#include "runner/report.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace act
{

namespace
{

/** JSON string escaping (control characters, quotes, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** CSV cells: strip the two characters our simple reader cannot take. */
std::string
csvSanitise(const std::string &s)
{
    std::string out = s;
    for (char &c : out) {
        if (c == ',' || c == '\n')
            c = ' ';
    }
    return out;
}

} // namespace

std::string
formatDouble(double v)
{
    char buf[64];
    // Integers render as integers ("10", not the also-round-tripping
    // but uglier "1e+01").
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    // Otherwise try increasing precision until the representation
    // round-trips; 0.18 stays "0.18" rather than
    // "0.18000000000000001". Deterministic for identical inputs.
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
reportJson(const Campaign &campaign, const std::vector<JobResult> &results)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"format\": 1,\n";
    out << "  \"campaign\": \"" << jsonEscape(campaign.name) << "\",\n";
    out << "  \"description\": \"" << jsonEscape(campaign.description)
        << "\",\n";
    out << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const JobResult &result = results[i];
        const JobSpec &spec = campaign.jobs[i];
        out << "    {\n";
        out << "      \"id\": " << spec.id << ",\n";
        out << "      \"workload\": \"" << jsonEscape(spec.workload)
            << "\",\n";
        out << "      \"scheme\": \"" << schemeName(spec.scheme) << "\",\n";
        out << "      \"kind\": \"" << jobKindName(spec.kind) << "\",\n";
        out << "      \"seed\": " << spec.seed << ",\n";
        out << "      \"ok\": " << (result.ok ? "true" : "false") << ",\n";
        // Failure fields appear only for failed or retried jobs:
        // fault-free reports stay byte-identical to the pre-resilience
        // schema.
        if (result.failure != JobFailure::kNone) {
            out << "      \"failure\": \""
                << jobFailureName(result.failure) << "\",\n";
            out << "      \"error\": \"" << jsonEscape(result.error)
                << "\",\n";
        }
        if (result.failure != JobFailure::kNone || result.attempts > 1)
            out << "      \"attempts\": " << result.attempts << ",\n";
        out << "      \"metrics\": {";
        bool first = true;
        for (const auto &[key, value] : result.metrics) {
            out << (first ? "" : ", ") << "\"" << jsonEscape(key)
                << "\": " << formatDouble(value);
            first = false;
        }
        out << "},\n";
        out << "      \"labels\": {";
        first = true;
        for (const auto &[key, value] : result.labels) {
            out << (first ? "" : ", ") << "\"" << jsonEscape(key)
                << "\": \"" << jsonEscape(value) << "\"";
            first = false;
        }
        out << "}\n";
        out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

std::string
reportCsv(const Campaign &campaign, const std::vector<JobResult> &results)
{
    std::ostringstream out;
    out << "id,workload,scheme,kind,seed,key,value\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const JobResult &result = results[i];
        const JobSpec &spec = campaign.jobs[i];
        const auto prefix = [&](std::ostringstream &row) {
            row << spec.id << "," << csvSanitise(spec.workload) << ","
                << schemeName(spec.scheme) << "," << jobKindName(spec.kind)
                << "," << spec.seed << ",";
        };
        for (const auto &[key, value] : result.metrics) {
            std::ostringstream row;
            prefix(row);
            row << csvSanitise(key) << "," << formatDouble(value) << "\n";
            out << row.str();
        }
        for (const auto &[key, value] : result.labels) {
            std::ostringstream row;
            prefix(row);
            row << csvSanitise(key) << "," << csvSanitise(value) << "\n";
            out << row.str();
        }
        if (result.failure != JobFailure::kNone) {
            std::ostringstream row;
            prefix(row);
            row << "failure," << jobFailureName(result.failure) << "\n";
            prefix(row);
            row << "error," << csvSanitise(result.error) << "\n";
            out << row.str();
        }
        if (result.failure != JobFailure::kNone || result.attempts > 1) {
            std::ostringstream row;
            prefix(row);
            row << "attempts," << result.attempts << "\n";
            out << row.str();
        }
        std::ostringstream row;
        prefix(row);
        row << "wall_ms," << formatDouble(result.wall_ms) << "\n";
        out << row.str();
    }
    return out.str();
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out.flush());
}

bool
loadReportCsv(const std::string &path, std::vector<ReportRow> &rows)
{
    rows.clear();
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    bool header = true;
    while (std::getline(in, line)) {
        if (header) {
            header = false;
            continue;
        }
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::size_t start = 0;
        while (cells.size() < 6) {
            const std::size_t comma = line.find(',', start);
            if (comma == std::string::npos)
                break;
            cells.push_back(line.substr(start, comma - start));
            start = comma + 1;
        }
        if (cells.size() != 6)
            return false;
        cells.push_back(line.substr(start)); // value (never contains ',').
        ReportRow row;
        row.id = static_cast<std::uint32_t>(
            std::strtoul(cells[0].c_str(), nullptr, 10));
        row.workload = cells[1];
        row.scheme = cells[2];
        row.kind = cells[3];
        row.seed = std::strtoull(cells[4].c_str(), nullptr, 10);
        row.key = cells[5];
        row.value = cells[6];
        rows.push_back(std::move(row));
    }
    return true;
}

} // namespace act
