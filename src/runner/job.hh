/**
 * @file
 * The campaign runner's unit of work.
 *
 * A Job is one experiment cell: a workload crossed with a diagnosis
 * scheme (ACT, Aviso, PBI), a job-level seed and a bundle of knobs
 * (trace counts, training epochs, machine overrides). Campaigns are
 * flat lists of jobs; the runner executes them in any order, on any
 * number of threads, and each job's entire behaviour is a pure
 * function of its spec — results land in per-job slots, so a report is
 * byte-identical at `--jobs 1` and `--jobs 8`.
 */

#ifndef ACT_RUNNER_JOB_HH
#define ACT_RUNNER_JOB_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace act
{

class TraceCache;

/** What a job computes. */
enum class JobKind : std::uint8_t
{
    kPrediction,   //!< Table IV cell: train, report false positives.
    kInvalidDeps,  //!< Fig 7(a) cell: synthesised invalid dependences.
    kDiagnoseAct,  //!< Table V ACT column: full single-failure loop.
    kDiagnoseAviso, //!< Table V Aviso column.
    kDiagnosePbi,  //!< Table V PBI column.
    kResilience,   //!< Diagnose-act under an injected fault plan.
    kCorpus,       //!< table6-corpus cell: one injected-bug variant.
    kAdaptivity    //!< table-adaptivity cell: ensembles + protection
                   //!< under a weight-concentrated fault plan.
};

/** Why a job's result slot carries no trustworthy numbers. */
enum class JobFailure : std::uint8_t
{
    kNone,             //!< The job ran to completion.
    kException,        //!< It threw; JobResult::error holds the message.
    kTimeout,          //!< It exceeded its wall-clock deadline.
    kRetriesExhausted, //!< Transient failures on every allowed attempt.
    kSkipped           //!< Never ran (--fail-fast after a failure).
};

const char *jobFailureName(JobFailure failure);

/**
 * Thrown by a job to signal a failure worth retrying (a glitch, not a
 * bug): the runner re-attempts it with backoff up to its attempt
 * budget. Any other exception is treated as permanent.
 */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Fault a job injects into *itself* (runner resilience testing). */
enum class InjectedFault : std::uint8_t
{
    kNone,
    kCrash,     //!< Throw on every attempt (permanent failure).
    kHang,      //!< Spin until the deadline watchdog cancels the job.
    kTransient  //!< Throw TransientError on the first N attempts.
};

/** Diagnosis scheme a job exercises (informational in report rows). */
enum class Scheme : std::uint8_t
{
    kAct,
    kAviso,
    kPbi
};

const char *jobKindName(JobKind kind);
const char *schemeName(Scheme scheme);

/**
 * Tunables. Defaults reproduce the original bench settings exactly;
 * the smoke campaign dials them down for speed.
 */
struct JobKnobs
{
    // Prediction / invalid-deps jobs.
    std::size_t train_traces = 10;
    std::size_t test_traces = 10;
    std::uint64_t train_seed_base = 100;
    std::uint64_t test_seed_base = 200;
    std::size_t max_epochs = 400;
    std::size_t max_examples = 24000;
    std::size_t sequence_length = 3;
    std::uint64_t shuffle_seed = 0xbe4c; //!< fig7a overrides with 0x7a.
    bool sweep_topology = false;
    std::string encoder = "pair"; //!< pair | dictionary | hash.

    // Diagnosis jobs.
    std::size_t postmortem_traces = 20;
    std::size_t diagnosis_epochs = 500;
    std::size_t diagnosis_max_examples = 30000;
    std::size_t debug_buffer_entries = 0; //!< 0 = Table III default.
    std::uint64_t failure_seed = 999;
    std::size_t baseline_correct_traces = 15;
    std::uint64_t baseline_seed_base = 500;
    std::uint32_t aviso_max_failures = 10;

    /**
     * Additional root-cause PCs for the PBI diagnoser beyond the buggy
     * dependence's load (e.g. pbzip2's consumer emptiness check also
     * implicates the bug).
     */
    std::vector<std::uint64_t> extra_root_pcs;

    /**
     * Run the multi-detector analysis pipeline on diagnose-act jobs:
     * mine atomicity/order invariants from the training traces, run
     * every detector over the failing trace, and report per-detector +
     * fused ensemble precision/recall columns. Off by default —
     * fault-free reports are byte-identical with the pipeline disabled
     * (table5 turns it on; `actrun --no-analysis` forces it back off).
     */
    bool analyze = false;

    // Resilience jobs (kResilience) and runner fault injection.
    double fault_rate = 0.0;        //!< Uniform FaultPlan rate.
    std::uint64_t fault_seed = 1;   //!< FaultPlan seed.
    InjectedFault inject_fault = InjectedFault::kNone;
    std::uint32_t inject_fail_attempts = 0; //!< kTransient: throwing attempts.
    std::uint64_t deadline_ms = 0;  //!< Per-job deadline; 0 = run default.

    // Adaptivity jobs (kAdaptivity). The defaults keep every knob
    // dormant: a diagnose-act cell with these untouched is bit-
    // identical to the pre-adaptivity runner.
    std::size_t ensemble_members = 1;  //!< Member networks (K).
    std::size_t ensemble_quorum = 0;   //!< Votes to flag (0 = majority).
    bool protect_weights = false;      //!< Selective weight protection.
    double protect_fraction = 0.5;     //!< Fraction of sets shadowed.
    bool self_tune = false;            //!< Hysteresis mode controller.
    std::size_t hidden_neurons = 0;    //!< Per-member h (0 = default).
};

/** One experiment cell. */
struct JobSpec
{
    std::uint32_t id = 0;     //!< Dense index; fixes the report order.
    JobKind kind = JobKind::kPrediction;
    Scheme scheme = Scheme::kAct;
    std::string workload;
    std::uint64_t seed = 0;   //!< Job-level seed (varies smoke cells).
    JobKnobs knobs;
};

/**
 * What a job produced. Everything here except wall_ms is a
 * deterministic function of the spec; wall_ms is reported in the CSV
 * and the console summary but kept out of the JSON report so reports
 * diff clean across machines and thread counts.
 */
struct JobResult
{
    std::uint32_t id = 0;
    bool ok = false;

    /**
     * Why ok is false (kNone while ok). Serialised — with error and
     * attempts — only for failing or retried jobs, so fault-free
     * reports stay byte-identical to pre-resilience ones.
     */
    JobFailure failure = JobFailure::kNone;
    std::string error;          //!< Diagnostic for a failed job.
    std::uint32_t attempts = 1; //!< Attempts consumed (retries + 1).

    /** Numeric outcomes; ordered map for stable serialisation. */
    std::map<std::string, double> metrics;

    /** Pre-formatted outcomes (topology strings, rank cells). */
    std::map<std::string, std::string> labels;

    double wall_ms = 0.0;
};

/**
 * Per-attempt execution context the runner hands to a job: which
 * attempt this is, and the deadline watchdog's cancel flag, which
 * long-running phases may poll to stop early.
 */
struct JobContext
{
    std::uint32_t attempt = 0; //!< 0-based attempt index.
    const std::atomic<bool> *cancel = nullptr;

    bool cancelled() const { return cancel != nullptr && cancel->load(); }
};

/**
 * Execute one job. All trace recordings go through @p cache; the
 * workload registry must already be populated. May throw — the
 * runner's executor turns exceptions into structured failed results.
 */
JobResult runJob(const JobSpec &spec, TraceCache &cache,
                 const JobContext &context = {});

/** A campaign: a named, ordered list of jobs. */
struct Campaign
{
    std::string name;
    std::string description;
    std::vector<JobSpec> jobs;
};

} // namespace act

#endif // ACT_RUNNER_JOB_HH
