/**
 * @file
 * The campaign runner's unit of work.
 *
 * A Job is one experiment cell: a workload crossed with a diagnosis
 * scheme (ACT, Aviso, PBI), a job-level seed and a bundle of knobs
 * (trace counts, training epochs, machine overrides). Campaigns are
 * flat lists of jobs; the runner executes them in any order, on any
 * number of threads, and each job's entire behaviour is a pure
 * function of its spec — results land in per-job slots, so a report is
 * byte-identical at `--jobs 1` and `--jobs 8`.
 */

#ifndef ACT_RUNNER_JOB_HH
#define ACT_RUNNER_JOB_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace act
{

class TraceCache;

/** What a job computes. */
enum class JobKind : std::uint8_t
{
    kPrediction,   //!< Table IV cell: train, report false positives.
    kInvalidDeps,  //!< Fig 7(a) cell: synthesised invalid dependences.
    kDiagnoseAct,  //!< Table V ACT column: full single-failure loop.
    kDiagnoseAviso, //!< Table V Aviso column.
    kDiagnosePbi   //!< Table V PBI column.
};

/** Diagnosis scheme a job exercises (informational in report rows). */
enum class Scheme : std::uint8_t
{
    kAct,
    kAviso,
    kPbi
};

const char *jobKindName(JobKind kind);
const char *schemeName(Scheme scheme);

/**
 * Tunables. Defaults reproduce the original bench settings exactly;
 * the smoke campaign dials them down for speed.
 */
struct JobKnobs
{
    // Prediction / invalid-deps jobs.
    std::size_t train_traces = 10;
    std::size_t test_traces = 10;
    std::uint64_t train_seed_base = 100;
    std::uint64_t test_seed_base = 200;
    std::size_t max_epochs = 400;
    std::size_t max_examples = 24000;
    std::size_t sequence_length = 3;
    std::uint64_t shuffle_seed = 0xbe4c; //!< fig7a overrides with 0x7a.
    bool sweep_topology = false;
    std::string encoder = "pair"; //!< pair | dictionary | hash.

    // Diagnosis jobs.
    std::size_t postmortem_traces = 20;
    std::size_t diagnosis_epochs = 500;
    std::size_t diagnosis_max_examples = 30000;
    std::size_t debug_buffer_entries = 0; //!< 0 = Table III default.
    std::uint64_t failure_seed = 999;
    std::size_t baseline_correct_traces = 15;
    std::uint64_t baseline_seed_base = 500;
    std::uint32_t aviso_max_failures = 10;

    /**
     * Additional root-cause PCs for the PBI diagnoser beyond the buggy
     * dependence's load (e.g. pbzip2's consumer emptiness check also
     * implicates the bug).
     */
    std::vector<std::uint64_t> extra_root_pcs;
};

/** One experiment cell. */
struct JobSpec
{
    std::uint32_t id = 0;     //!< Dense index; fixes the report order.
    JobKind kind = JobKind::kPrediction;
    Scheme scheme = Scheme::kAct;
    std::string workload;
    std::uint64_t seed = 0;   //!< Job-level seed (varies smoke cells).
    JobKnobs knobs;
};

/**
 * What a job produced. Everything here except wall_ms is a
 * deterministic function of the spec; wall_ms is reported in the CSV
 * and the console summary but kept out of the JSON report so reports
 * diff clean across machines and thread counts.
 */
struct JobResult
{
    std::uint32_t id = 0;
    bool ok = false;

    /** Numeric outcomes; ordered map for stable serialisation. */
    std::map<std::string, double> metrics;

    /** Pre-formatted outcomes (topology strings, rank cells). */
    std::map<std::string, std::string> labels;

    double wall_ms = 0.0;
};

/**
 * Execute one job. All trace recordings go through @p cache; the
 * workload registry must already be populated.
 */
JobResult runJob(const JobSpec &spec, TraceCache &cache);

/** A campaign: a named, ordered list of jobs. */
struct Campaign
{
    std::string name;
    std::string description;
    std::vector<JobSpec> jobs;
};

} // namespace act

#endif // ACT_RUNNER_JOB_HH
