/**
 * @file
 * Campaign execution: fan a campaign's jobs across a work-stealing
 * thread pool, feed every trace recording through a shared TraceCache,
 * and collect results into per-job slots (report order is the job
 * order, never the completion order).
 */

#ifndef ACT_RUNNER_RUNNER_HH
#define ACT_RUNNER_RUNNER_HH

#include <string>
#include <vector>

#include "runner/job.hh"
#include "runner/trace_cache.hh"

namespace act
{

/** Execution options. */
struct RunOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;

    /** Trace-cache directory; empty = in-memory cache only. */
    std::string cache_dir;

    /** Keep loaded traces resident for intra-run reuse. */
    bool memory_cache = true;

    /** Per-job progress lines on stderr. */
    bool verbose = false;

    /**
     * Keep running after a job fails permanently (true, the default:
     * the report carries every failure). False = fail fast: jobs not
     * yet started are recorded as kSkipped.
     */
    bool keep_going = true;

    /** Attempt budget per job; only TransientError consumes retries. */
    std::uint32_t max_attempts = 3;

    /** Default per-job wall-clock deadline in ms (0 = none). A job's
     *  JobKnobs::deadline_ms overrides it. */
    std::uint64_t deadline_ms = 0;

    /** Base backoff between retry attempts (doubles per attempt). */
    std::uint64_t retry_backoff_ms = 10;

    /** Seed for the deterministic retry-backoff jitter. */
    std::uint64_t retry_seed = 0x5eed;
};

/** A finished campaign. */
struct CampaignRunResult
{
    std::vector<JobResult> results; //!< Indexed by job id.
    TraceCache::Stats cache;
    double wall_ms = 0.0;
    std::uint64_t steals = 0;
    unsigned threads = 0;

    /** Jobs whose slot carries a failure (any JobFailure != kNone). */
    std::uint64_t
    failedJobs() const
    {
        std::uint64_t n = 0;
        for (const JobResult &r : results)
            n += r.failure != JobFailure::kNone ? 1 : 0;
        return n;
    }
};

/**
 * Run every job of @p campaign. Registers the workloads if needed.
 * The result vector always has one entry per job, in job order.
 */
CampaignRunResult runCampaign(const Campaign &campaign,
                              const RunOptions &options = {});

} // namespace act

#endif // ACT_RUNNER_RUNNER_HH
