/**
 * @file
 * Campaign execution: fan a campaign's jobs across a work-stealing
 * thread pool, feed every trace recording through a shared TraceCache,
 * and collect results into per-job slots (report order is the job
 * order, never the completion order).
 */

#ifndef ACT_RUNNER_RUNNER_HH
#define ACT_RUNNER_RUNNER_HH

#include <string>
#include <vector>

#include "runner/job.hh"
#include "runner/trace_cache.hh"

namespace act
{

/** Execution options. */
struct RunOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;

    /** Trace-cache directory; empty = in-memory cache only. */
    std::string cache_dir;

    /** Keep loaded traces resident for intra-run reuse. */
    bool memory_cache = true;

    /** Per-job progress lines on stderr. */
    bool verbose = false;
};

/** A finished campaign. */
struct CampaignRunResult
{
    std::vector<JobResult> results; //!< Indexed by job id.
    TraceCache::Stats cache;
    double wall_ms = 0.0;
    std::uint64_t steals = 0;
    unsigned threads = 0;
};

/**
 * Run every job of @p campaign. Registers the workloads if needed.
 * The result vector always has one entry per job, in job order.
 */
CampaignRunResult runCampaign(const Campaign &campaign,
                              const RunOptions &options = {});

} // namespace act

#endif // ACT_RUNNER_RUNNER_HH
