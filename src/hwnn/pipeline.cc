#include "hwnn/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace act
{

HwNeuralNetwork::HwNeuralNetwork(const HwNetworkConfig &config,
                                 Topology topology)
    : config_(config), topology_(topology), sigmoid_(),
      output_(config.neuron, sigmoid_)
{
    ACT_ASSERT(topology_.valid());
    ACT_ASSERT(topology_.inputs <= config_.neuron.max_inputs);
    ACT_ASSERT(topology_.hidden <= config_.neuron.max_inputs);
    hidden_.reserve(config_.neuron.max_inputs);
    for (std::uint32_t i = 0; i < config_.neuron.max_inputs; ++i)
        hidden_.emplace_back(config_.neuron, sigmoid_);
}

void
HwNeuralNetwork::setTopology(Topology topology)
{
    ACT_ASSERT(topology.valid());
    ACT_ASSERT(topology.inputs <= config_.neuron.max_inputs);
    ACT_ASSERT(topology.hidden <= config_.neuron.max_inputs);
    topology_ = topology;
    std::vector<double> zeros(weightCount(), 0.0);
    loadWeights(zeros);
}

std::size_t
HwNeuralNetwork::weightCount() const
{
    return topology_.hidden * (topology_.inputs + 1) +
           (topology_.hidden + 1);
}

double
HwNeuralNetwork::infer(std::span<const double> inputs) const
{
    ACT_ASSERT(inputs.size() == topology_.inputs);
    fixed_inputs_.clear();
    for (const double v : inputs)
        fixed_inputs_.push_back(HwFixed::fromDouble(v));

    hidden_out_.resize(topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k)
        hidden_out_[k] = hidden_[k].evaluate(fixed_inputs_);
    return output_.evaluate(std::span<const HwFixed>(
                                hidden_out_.data(), topology_.hidden))
        .toDouble();
}

double
HwNeuralNetwork::confidence(std::span<const double> inputs) const
{
    return infer(inputs) - 0.5;
}

double
HwNeuralNetwork::rawOutput(std::span<const double> inputs) const
{
    ACT_ASSERT(inputs.size() == topology_.inputs);
    fixed_inputs_.clear();
    for (const double v : inputs)
        fixed_inputs_.push_back(HwFixed::fromDouble(v));
    hidden_out_.resize(topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k)
        hidden_out_[k] = hidden_[k].evaluate(fixed_inputs_);
    return output_
        .weightedSum(std::span<const HwFixed>(hidden_out_.data(),
                                              topology_.hidden))
        .toDouble();
}

double
HwNeuralNetwork::train(std::span<const double> inputs, double target,
                       double learning_rate)
{
    ACT_ASSERT(inputs.size() == topology_.inputs);
    fixed_inputs_.clear();
    for (const double v : inputs)
        fixed_inputs_.push_back(HwFixed::fromDouble(v));

    hidden_out_.resize(topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k)
        hidden_out_[k] = hidden_[k].evaluate(fixed_inputs_);
    const std::span<const HwFixed> hidden_span(hidden_out_.data(),
                                               topology_.hidden);
    const HwFixed out = output_.evaluate(hidden_span);

    // Output delta: o * (1 - o) * (t - o), scaled by the learning rate.
    const HwFixed one = HwFixed::fromDouble(1.0);
    const HwFixed t = HwFixed::fromDouble(target);
    const HwFixed out_err = out * (one - out) * (t - out);
    const HwFixed lr = HwFixed::fromDouble(learning_rate);

    // Hidden deltas use the output weights *before* the update.
    std::vector<HwFixed> hidden_delta(topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        const HwFixed back = output_.weightAt(k + 1) * out_err;
        hidden_delta[k] =
            hidden_out_[k] * (one - hidden_out_[k]) * back * lr;
    }

    output_.applyUpdate(lr * out_err, hidden_span);
    for (std::size_t k = 0; k < topology_.hidden; ++k)
        hidden_[k].applyUpdate(hidden_delta[k], fixed_inputs_);

    return out.toDouble();
}

void
HwNeuralNetwork::loadWeights(std::span<const double> weights)
{
    ACT_ASSERT(weights.size() == weightCount());
    const std::size_t stride = topology_.inputs + 1;
    for (std::size_t k = 0; k < topology_.hidden; ++k)
        hidden_[k].setWeights(weights.subspan(k * stride, stride));
    // Zero the weights of unused hidden neurons so they cannot affect
    // a later topology change.
    for (std::size_t k = topology_.hidden; k < hidden_.size(); ++k)
        hidden_[k].setWeights(std::span<const double>{});
    output_.setWeights(
        weights.subspan(topology_.hidden * stride, topology_.hidden + 1));
}

std::vector<double>
HwNeuralNetwork::storeWeights() const
{
    std::vector<double> out;
    out.reserve(weightCount());
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        const auto w = hidden_[k].weightsAsDouble();
        out.insert(out.end(), w.begin(),
                   w.begin() + static_cast<long>(topology_.inputs + 1));
    }
    const auto w = output_.weightsAsDouble();
    out.insert(out.end(), w.begin(),
               w.begin() + static_cast<long>(topology_.hidden + 1));
    return out;
}

double
HwNeuralNetwork::weightAt(std::size_t index) const
{
    ACT_ASSERT(index < weightCount());
    const std::size_t stride = topology_.inputs + 1;
    const std::size_t hidden_span = topology_.hidden * stride;
    if (index < hidden_span)
        return hidden_[index / stride].weightAt(index % stride).toDouble();
    return output_.weightAt(index - hidden_span).toDouble();
}

void
HwNeuralNetwork::setWeightAt(std::size_t index, double value)
{
    ACT_ASSERT(index < weightCount());
    const std::size_t stride = topology_.inputs + 1;
    const std::size_t hidden_span = topology_.hidden * stride;
    if (index < hidden_span) {
        hidden_[index / stride].setWeightAt(index % stride,
                                            HwFixed::fromDouble(value));
    } else {
        output_.setWeightAt(index - hidden_span,
                            HwFixed::fromDouble(value));
    }
}

void
HwNeuralNetwork::drain(Cycle now) const
{
    while (!in_flight_.empty() && in_flight_.front() <= now)
        in_flight_.pop_front();
}

AcceptResult
HwNeuralNetwork::offer(Cycle now, bool training)
{
    drain(now);
    if (in_flight_.size() >= config_.fifo_entries) {
        ++rejected_;
        return AcceptResult{false, in_flight_.front()};
    }
    const Cycle service = training ? config_.trainServiceTime()
                                   : config_.testServiceTime();
    // S1 (FIFO insert) takes one cycle; service begins when the
    // previous input vacates the compute stages.
    const Cycle start = std::max(now + 1, last_completion_);
    last_completion_ = start + service;
    in_flight_.push_back(last_completion_);
    ++accepted_;
    return AcceptResult{true, 0};
}

std::size_t
HwNeuralNetwork::occupancy(Cycle now) const
{
    drain(now);
    return in_flight_.size();
}

Cycle
HwNeuralNetwork::drainCycle() const
{
    return last_completion_;
}

void
HwNeuralNetwork::flush()
{
    in_flight_.clear();
}

} // namespace act
