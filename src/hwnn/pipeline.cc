#include "hwnn/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/spans.hh"

namespace act
{

namespace
{

/**
 * Neuron::weightedSum over a packed register row: bias then one
 * saturating multiply-add per input, in exactly the reference order
 * (fixed-point truncation makes the order observable).
 */
HwFixed
weightedSumRow(const HwFixed *w, const HwFixed *inputs, std::size_t n)
{
    HwFixed acc = w[0]; // bias, a_0 == 1
    for (std::size_t j = 0; j < n; ++j)
        acc = acc + w[j + 1] * inputs[j];
    return acc;
}

/** Neuron::applyUpdate over a packed register row. */
void
applyUpdateRow(HwFixed *w, HwFixed delta, const HwFixed *inputs,
               std::size_t n)
{
    w[0] = w[0] + delta;
    for (std::size_t j = 0; j < n; ++j)
        w[j + 1] = w[j + 1] + delta * inputs[j];
}

} // namespace

HwNeuralNetwork::HwNeuralNetwork(const HwNetworkConfig &config,
                                 Topology topology)
    : config_(config), topology_(topology), sigmoid_(),
      reg_stride_(config.neuron.max_inputs + 1)
{
    ACT_ASSERT(config_.neuron.max_inputs >= 1);
    ACT_ASSERT(config_.neuron.muladd_units >= 1 &&
               config_.neuron.muladd_units <= config_.neuron.max_inputs);
    ACT_ASSERT(topology_.valid());
    ACT_ASSERT(topology_.inputs <= config_.neuron.max_inputs);
    ACT_ASSERT(topology_.hidden <= config_.neuron.max_inputs);
    hidden_w_.assign(config_.neuron.max_inputs * reg_stride_, HwFixed{});
    output_w_.assign(reg_stride_, HwFixed{});
    fixed_inputs_.reserve(config_.neuron.max_inputs);
    hidden_out_.reserve(config_.neuron.max_inputs);
    hidden_delta_.reserve(config_.neuron.max_inputs);
}

void
HwNeuralNetwork::setTopology(Topology topology)
{
    ACT_ASSERT(topology.valid());
    ACT_ASSERT(topology.inputs <= config_.neuron.max_inputs);
    ACT_ASSERT(topology.hidden <= config_.neuron.max_inputs);
    topology_ = topology;
    std::vector<double> zeros(weightCount(), 0.0);
    loadWeights(zeros);
}

std::size_t
HwNeuralNetwork::weightCount() const
{
    return topology_.hidden * (topology_.inputs + 1) +
           (topology_.hidden + 1);
}

void
HwNeuralNetwork::toFixed(std::span<const double> inputs) const
{
    ACT_ASSERT(inputs.size() == topology_.inputs);
    fixed_inputs_.clear();
    for (const double v : inputs)
        fixed_inputs_.push_back(HwFixed::fromDouble(v));
}

HwFixed
HwNeuralNetwork::forwardFixed() const
{
    const HwFixed *in = fixed_inputs_.data();
    hidden_out_.resize(topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        hidden_out_[k] = sigmoid_.lookup(
            weightedSumRow(hiddenRow(k), in, topology_.inputs));
    }
    return weightedSumRow(output_w_.data(), hidden_out_.data(),
                          topology_.hidden);
}

double
HwNeuralNetwork::infer(std::span<const double> inputs) const
{
    toFixed(inputs);
    return sigmoid_.lookup(forwardFixed()).toDouble();
}

void
HwNeuralNetwork::inferBatch(std::span<const std::vector<double>> batch,
                            std::vector<double> &outputs) const
{
    telemetry::ScopedSpan span("nn.infer_batch", "nn");
    span.annotate(telemetry::arg(
        "batch", static_cast<std::uint64_t>(batch.size())));
    outputs.clear();
    outputs.reserve(batch.size());
    for (const auto &inputs : batch) {
        toFixed(inputs);
        outputs.push_back(sigmoid_.lookup(forwardFixed()).toDouble());
    }
}

void
HwNeuralNetwork::inferBatchFlat(std::span<const double> flat,
                                std::size_t width, std::size_t count,
                                std::vector<double> &outputs) const
{
    ACT_ASSERT(flat.size() == width * count);
    telemetry::ScopedSpan span("nn.infer_batch", "nn");
    span.annotate(
        telemetry::arg("batch", static_cast<std::uint64_t>(count)));
    outputs.clear();
    outputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        toFixed(flat.subspan(i * width, width));
        outputs.push_back(sigmoid_.lookup(forwardFixed()).toDouble());
    }
}

double
HwNeuralNetwork::confidence(std::span<const double> inputs) const
{
    return infer(inputs) - 0.5;
}

double
HwNeuralNetwork::inferWithRaw(std::span<const double> inputs,
                              double &raw) const
{
    toFixed(inputs);
    const HwFixed acc = forwardFixed();
    raw = acc.toDouble();
    return sigmoid_.lookup(acc).toDouble();
}

double
HwNeuralNetwork::rawOutput(std::span<const double> inputs) const
{
    toFixed(inputs);
    return forwardFixed().toDouble();
}

double
HwNeuralNetwork::train(std::span<const double> inputs, double target,
                       double learning_rate)
{
    toFixed(inputs);
    const HwFixed out = sigmoid_.lookup(forwardFixed());

    // Output delta: o * (1 - o) * (t - o), scaled by the learning rate.
    const HwFixed one = HwFixed::fromDouble(1.0);
    const HwFixed t = HwFixed::fromDouble(target);
    const HwFixed out_err = out * (one - out) * (t - out);
    const HwFixed lr = HwFixed::fromDouble(learning_rate);

    // Hidden deltas use the output weights *before* the update.
    hidden_delta_.resize(topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        const HwFixed back = output_w_[k + 1] * out_err;
        hidden_delta_[k] =
            hidden_out_[k] * (one - hidden_out_[k]) * back * lr;
    }

    applyUpdateRow(output_w_.data(), lr * out_err, hidden_out_.data(),
                   topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        applyUpdateRow(hiddenRow(k), hidden_delta_[k],
                       fixed_inputs_.data(), topology_.inputs);
    }

    return out.toDouble();
}

void
HwNeuralNetwork::loadWeights(std::span<const double> weights)
{
    ACT_ASSERT(weights.size() == weightCount());
    const std::size_t stride = topology_.inputs + 1;
    // Registers beyond a neuron's loaded weights are zeroed — that is
    // how the hardware disables surplus inputs, and it keeps stale
    // values from leaking into a later topology change.
    std::fill(hidden_w_.begin(), hidden_w_.end(), HwFixed{});
    std::fill(output_w_.begin(), output_w_.end(), HwFixed{});
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        HwFixed *row = hiddenRow(k);
        for (std::size_t j = 0; j < stride; ++j)
            row[j] = HwFixed::fromDouble(weights[k * stride + j]);
    }
    const std::size_t out_base = topology_.hidden * stride;
    for (std::size_t j = 0; j < topology_.hidden + 1; ++j)
        output_w_[j] = HwFixed::fromDouble(weights[out_base + j]);
}

std::vector<double>
HwNeuralNetwork::storeWeights() const
{
    std::vector<double> out;
    out.reserve(weightCount());
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        const HwFixed *row = hiddenRow(k);
        for (std::size_t j = 0; j < topology_.inputs + 1; ++j)
            out.push_back(row[j].toDouble());
    }
    for (std::size_t j = 0; j < topology_.hidden + 1; ++j)
        out.push_back(output_w_[j].toDouble());
    return out;
}

double
HwNeuralNetwork::weightAt(std::size_t index) const
{
    ACT_ASSERT(index < weightCount());
    const std::size_t stride = topology_.inputs + 1;
    const std::size_t hidden_span = topology_.hidden * stride;
    if (index < hidden_span)
        return hiddenRow(index / stride)[index % stride].toDouble();
    return output_w_[index - hidden_span].toDouble();
}

void
HwNeuralNetwork::setWeightAt(std::size_t index, double value)
{
    ACT_ASSERT(index < weightCount());
    const std::size_t stride = topology_.inputs + 1;
    const std::size_t hidden_span = topology_.hidden * stride;
    if (index < hidden_span) {
        hiddenRow(index / stride)[index % stride] =
            HwFixed::fromDouble(value);
    } else {
        output_w_[index - hidden_span] = HwFixed::fromDouble(value);
    }
}

void
HwNeuralNetwork::drain(Cycle now) const
{
    while (!in_flight_.empty() && in_flight_.front() <= now)
        in_flight_.pop_front();
}

AcceptResult
HwNeuralNetwork::offer(Cycle now, bool training)
{
    drain(now);
    if (in_flight_.size() >= config_.fifo_entries) {
        ++rejected_;
        return AcceptResult{false, in_flight_.front()};
    }
    const Cycle service = training ? config_.trainServiceTime()
                                   : config_.testServiceTime();
    // S1 (FIFO insert) takes one cycle; service begins when the
    // previous input vacates the compute stages.
    const Cycle start = std::max(now + 1, last_completion_);
    last_completion_ = start + service;
    in_flight_.push_back(last_completion_);
    ++accepted_;
    return AcceptResult{true, 0};
}

std::size_t
HwNeuralNetwork::occupancy(Cycle now) const
{
    drain(now);
    return in_flight_.size();
}

Cycle
HwNeuralNetwork::drainCycle() const
{
    return last_completion_;
}

void
HwNeuralNetwork::flush()
{
    in_flight_.clear();
}

void
inferEnsembleFlat(std::span<const HwNeuralNetwork *const> members,
                  std::span<const double> flat, std::size_t width,
                  std::size_t count, std::vector<double> &outputs,
                  std::vector<double> &scratch)
{
    ACT_ASSERT(!members.empty());
    const std::size_t k = members.size();
    outputs.clear();
    if (k == 1) {
        // Single member: the plain batch pass already produces the
        // item-major layout — no interleave copy needed.
        members[0]->inferBatchFlat(flat, width, count, outputs);
        return;
    }
    outputs.resize(count * k);
    for (std::size_t m = 0; m < k; ++m) {
        members[m]->inferBatchFlat(flat, width, count, scratch);
        for (std::size_t i = 0; i < count; ++i)
            outputs[i * k + m] = scratch[i];
    }
}

} // namespace act
