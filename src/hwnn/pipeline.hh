/**
 * @file
 * The three-stage partially configurable hardware network (Figure 6(a)).
 *
 * Stage S1 is the input FIFO; stage S2 is a bank of M hidden neurons
 * evaluated in parallel; stage S3 is the single output neuron. S1 takes
 * one cycle; S2 and S3 each take the neuron latency T. During online
 * testing the stages are pipelined, so with a full FIFO the network
 * accepts one input every T cycles. During online training the network
 * must finish back-propagation before accepting the next input, giving
 * one input every 4T cycles (Section IV-A).
 *
 * Functional behaviour is fixed point (Q15.16 with a sigmoid table),
 * with a flat weight-register file compatible with MlpNetwork so that
 * software-trained weights load verbatim via stwt.
 */

#ifndef ACT_HWNN_PIPELINE_HH
#define ACT_HWNN_PIPELINE_HH

#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "hwnn/neuron.hh"
#include "nn/network.hh"

namespace act
{

/** Whole-network hardware configuration. */
struct HwNetworkConfig
{
    NeuronConfig neuron;
    std::uint32_t fifo_entries = 8; //!< Input FIFO size {4, 8, 16}.

    /** Cycles between accepted inputs in testing mode. */
    Cycle testServiceTime() const { return neuron.latency(); }

    /** Cycles between accepted inputs in training mode. */
    Cycle trainServiceTime() const { return 4 * neuron.latency(); }
};

/** Result of offering an input to the pipeline at a given cycle. */
struct AcceptResult
{
    bool accepted = false;
    /** When rejected: first cycle at which a retry can succeed. */
    Cycle retry_at = 0;
};

/**
 * Functional + timing model of the AM's neural network.
 */
class HwNeuralNetwork
{
  public:
    /**
     * @param config   Hardware parameters.
     * @param topology Logical topology (inputs/hidden <= M).
     */
    HwNeuralNetwork(const HwNetworkConfig &config, Topology topology);

    const HwNetworkConfig &config() const { return config_; }
    const Topology &topology() const { return topology_; }

    /** Reconfigure the logical topology (weights are zeroed). */
    void setTopology(Topology topology);

    // --- Functional interface -------------------------------------

    /** Forward pass; output activation in (0, 1). */
    double infer(std::span<const double> inputs) const;

    /**
     * Evaluate a whole queue of input vectors in one pass — the
     * per-drain batch path: instead of touching the weight file once
     * per load, the drain walks every queued sequence against the
     * weights while they are hot. Bit-identical to calling infer() on
     * each element in order (the forward pass is pure), appending one
     * output per element to @p outputs (cleared first).
     */
    void inferBatch(std::span<const std::vector<double>> batch,
                    std::vector<double> &outputs) const;

    /**
     * Same batch pass over a flat buffer of @p count input vectors of
     * @p width doubles each, packed back to back — the layout the
     * fleet batcher accumulates into, sparing one heap vector per
     * staged sequence. Bit-identical to the vector-of-vectors
     * overload (both reduce to per-element infer()).
     */
    void inferBatchFlat(std::span<const double> flat, std::size_t width,
                        std::size_t count,
                        std::vector<double> &outputs) const;

    /** Signed confidence, infer() - 0.5. */
    double confidence(std::span<const double> inputs) const;

    /**
     * One forward pass yielding both the activation (returned) and the
     * output neuron's pre-sigmoid accumulator (@p raw). Bit-identical
     * to calling infer() and rawOutput() separately, at half the
     * weight-file traffic — the AM's testing-mode path logs the raw
     * value for every flagged sequence.
     */
    double inferWithRaw(std::span<const double> inputs, double &raw) const;

    /**
     * The output neuron's raw accumulator value (pre-sigmoid). The
     * sigmoid saturates for confident predictions, so the Debug Buffer
     * records this value instead: it preserves the dynamic range the
     * ranking tie-break ("the most negative output first") needs.
     */
    double rawOutput(std::span<const double> inputs) const;

    bool predictValid(std::span<const double> inputs) const
    {
        return infer(inputs) >= 0.5;
    }

    /** One fixed-point back-propagation step; returns prior output. */
    double train(std::span<const double> inputs, double target,
                 double learning_rate);

    /** Load a flat MlpNetwork-layout weight vector (stwt loop). */
    void loadWeights(std::span<const double> weights);

    /** Read back the (quantised) flat weight vector (ldwt loop). */
    std::vector<double> storeWeights() const;

    /** Number of addressable weight registers for this topology. */
    std::size_t weightCount() const;

    /** Read / write one weight register by flat index. */
    double weightAt(std::size_t index) const;
    void setWeightAt(std::size_t index, double value);

    // --- Timing interface -----------------------------------------

    /**
     * Offer an input at @p now.
     *
     * @param now      Current cycle.
     * @param training Whether the AM is in online-training mode.
     * @return Whether the FIFO accepted the input; when it did not,
     *         retry_at tells the caller (a stalled load at the ROB
     *         head) when space frees up.
     */
    AcceptResult offer(Cycle now, bool training);

    /** Inputs currently queued or in flight at @p now. */
    std::size_t occupancy(Cycle now) const;

    /** Cycle at which the last accepted input finishes processing. */
    Cycle drainCycle() const;

    /** Drop all in-flight inputs (context switch flush, §IV-D). */
    void flush();

    /** Total inputs ever accepted. */
    std::uint64_t acceptedCount() const { return accepted_; }

    /** Total offers that were rejected (load retire stalls). */
    std::uint64_t rejectedCount() const { return rejected_; }

  private:
    void drain(Cycle now) const;

    /** Quantise @p inputs into fixed_inputs_. */
    void toFixed(std::span<const double> inputs) const;

    /** Forward pass over fixed_inputs_; fills hidden_out_ and returns
     *  the output neuron's pre-sigmoid accumulator. */
    HwFixed forwardFixed() const;

    /** Weight registers of hidden neuron @p k ([bias, w_1 .. w_M]). */
    HwFixed *hiddenRow(std::size_t k) { return &hidden_w_[k * reg_stride_]; }
    const HwFixed *
    hiddenRow(std::size_t k) const
    {
        return &hidden_w_[k * reg_stride_];
    }

    HwNetworkConfig config_;
    Topology topology_;
    SigmoidTable sigmoid_;

    /**
     * Flat weight-register file, replacing per-Neuron objects on the
     * inference path: M hidden rows of (M + 1) registers each, then the
     * output row. The row-major packing walks exactly the access
     * pattern of the forward pass, and the arithmetic replicates
     * Neuron::weightedSum's accumulation order bit for bit (the Neuron
     * class remains the single-neuron reference model).
     */
    std::size_t reg_stride_;         //!< Registers per neuron (M + 1).
    std::vector<HwFixed> hidden_w_;  //!< M x reg_stride_, row-major.
    std::vector<HwFixed> output_w_;  //!< reg_stride_ registers.

    /** Completion cycles of queued inputs (front = oldest). */
    mutable std::deque<Cycle> in_flight_;
    Cycle last_completion_ = 0;

    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;

    mutable std::vector<HwFixed> fixed_inputs_;
    mutable std::vector<HwFixed> hidden_out_;
    mutable std::vector<HwFixed> hidden_delta_; //!< train() scratch.
};

/**
 * Ensemble batch pass: evaluate @p count flat-packed input vectors of
 * @p width doubles against every network in @p members. Outputs are
 * item-major with the member index fastest — activations for item i
 * occupy outputs[i*K .. i*K+K-1] in member order, the exact span
 * ActModule::commitEnsemble consumes. Each member runs its own
 * inferBatchFlat (weights stay hot per member; bit-identical per
 * member to per-element infer()); @p scratch avoids re-allocating the
 * per-member output buffer across flushes.
 */
void inferEnsembleFlat(std::span<const HwNeuralNetwork *const> members,
                       std::span<const double> flat, std::size_t width,
                       std::size_t count, std::vector<double> &outputs,
                       std::vector<double> &scratch);

} // namespace act

#endif // ACT_HWNN_PIPELINE_HH
