#include "hwnn/neuron.hh"

#include "common/logging.hh"

namespace act
{

Neuron::Neuron(const NeuronConfig &config, const SigmoidTable &table)
    : config_(config), table_(table)
{
    ACT_ASSERT(config_.max_inputs >= 1);
    ACT_ASSERT(config_.muladd_units >= 1 &&
               config_.muladd_units <= config_.max_inputs);
    weights_.assign(config_.max_inputs + 1, HwFixed{});
}

void
Neuron::setWeights(std::span<const double> weights)
{
    ACT_ASSERT(weights.size() <= weights_.size());
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        weights_[i] = i < weights.size() ? HwFixed::fromDouble(weights[i])
                                         : HwFixed{};
    }
}

std::vector<double>
Neuron::weightsAsDouble() const
{
    std::vector<double> out;
    out.reserve(weights_.size());
    for (const auto w : weights_)
        out.push_back(w.toDouble());
    return out;
}

HwFixed
Neuron::weightedSum(std::span<const HwFixed> inputs) const
{
    ACT_ASSERT(inputs.size() <= config_.max_inputs);
    HwFixed acc = weights_[0]; // bias, a_0 == 1
    for (std::size_t j = 0; j < inputs.size(); ++j)
        acc = acc + weights_[j + 1] * inputs[j];
    return acc;
}

HwFixed
Neuron::evaluate(std::span<const HwFixed> inputs) const
{
    return table_.lookup(weightedSum(inputs));
}

void
Neuron::applyUpdate(HwFixed delta, std::span<const HwFixed> inputs)
{
    ACT_ASSERT(inputs.size() <= config_.max_inputs);
    weights_[0] = weights_[0] + delta;
    for (std::size_t j = 0; j < inputs.size(); ++j)
        weights_[j + 1] = weights_[j + 1] + delta * inputs[j];
}

HwFixed
Neuron::weightAt(std::size_t index) const
{
    ACT_ASSERT(index < weights_.size());
    return weights_[index];
}

void
Neuron::setWeightAt(std::size_t index, HwFixed value)
{
    ACT_ASSERT(index < weights_.size());
    weights_[index] = value;
}

} // namespace act
