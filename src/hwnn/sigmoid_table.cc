#include "hwnn/sigmoid_table.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace act
{

SigmoidTable::SigmoidTable(std::size_t entries)
{
    ACT_ASSERT(entries >= 2);
    tables_[0].resize(entries);
    tables_[1].resize(entries);
    const HwFixed one = HwFixed::fromDouble(1.0);
    for (std::size_t i = 0; i < entries; ++i) {
        const double x = kInputRange * static_cast<double>(i) /
                         static_cast<double>(entries - 1);
        tables_[0][i] = HwFixed::fromDouble(1.0 / (1.0 + std::exp(-x)));
        tables_[1][i] = one - tables_[0][i];
    }
}

double
SigmoidTable::maxAbsError() const
{
    double worst = 0.0;
    for (int i = -4000; i <= 4000; ++i) {
        const double x = static_cast<double>(i) / 4000.0 * kInputRange;
        const double exact = 1.0 / (1.0 + std::exp(-x));
        const double approx = lookup(HwFixed::fromDouble(x)).toDouble();
        worst = std::max(worst, std::abs(exact - approx));
    }
    return worst;
}

} // namespace act
