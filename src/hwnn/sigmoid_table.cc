#include "hwnn/sigmoid_table.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace act
{

SigmoidTable::SigmoidTable(std::size_t entries)
{
    ACT_ASSERT(entries >= 2);
    table_.resize(entries);
    for (std::size_t i = 0; i < entries; ++i) {
        const double x = kInputRange * static_cast<double>(i) /
                         static_cast<double>(entries - 1);
        table_[i] = HwFixed::fromDouble(1.0 / (1.0 + std::exp(-x)));
    }
}

HwFixed
SigmoidTable::lookup(HwFixed x) const
{
    const bool negative = x.raw() < 0;
    const double mag = std::abs(x.toDouble());
    const auto last = table_.size() - 1;
    const auto index = static_cast<std::size_t>(std::min(
        mag / kInputRange * static_cast<double>(last),
        static_cast<double>(last)));
    const HwFixed positive_value = table_[index];
    if (!negative)
        return positive_value;
    return HwFixed::fromDouble(1.0) - positive_value;
}

double
SigmoidTable::maxAbsError() const
{
    double worst = 0.0;
    for (int i = -4000; i <= 4000; ++i) {
        const double x = static_cast<double>(i) / 4000.0 * kInputRange;
        const double exact = 1.0 / (1.0 + std::exp(-x));
        const double approx = lookup(HwFixed::fromDouble(x)).toDouble();
        worst = std::max(worst, std::abs(exact - approx));
    }
    return worst;
}

} // namespace act
