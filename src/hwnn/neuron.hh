/**
 * @file
 * Timing/functional model of one hardware neuron (Figure 6(b)).
 *
 * A neuron holds M weight registers and M input registers, a
 * configurable number of cascaded multiply-add units, an accumulator
 * register and a sigmoid table. The number of multiply-add units x is
 * the latency knob of Section IV-A:
 *
 *     T = ceil(M / x) * T_muladd + T_rest
 *
 * where T_rest covers the accumulator and sigmoid table stages. During
 * training the weight update needs the same M multiply-adds, and the
 * extra M multiplications for error back-propagation run on additional
 * multipliers in parallel, so the per-pass latency is unchanged.
 */

#ifndef ACT_HWNN_NEURON_HH
#define ACT_HWNN_NEURON_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/fixed_point.hh"
#include "common/types.hh"
#include "hwnn/sigmoid_table.hh"

namespace act
{

/** Hardware parameters of a neuron (Table III defaults in bold). */
struct NeuronConfig
{
    std::uint32_t max_inputs = 10;      //!< M, weight/input registers.
    std::uint32_t muladd_units = 2;     //!< x in {1, 2, 5, 10}.
    std::uint32_t muladd_latency = 1;   //!< T_muladd (cycles).
    std::uint32_t accumulator_latency = 1;
    std::uint32_t sigmoid_latency = 1;

    /** Neuron latency T in cycles for one full evaluation pass. */
    Cycle
    latency() const
    {
        const std::uint32_t passes =
            (max_inputs + muladd_units - 1) / muladd_units;
        return static_cast<Cycle>(passes) * muladd_latency +
               accumulator_latency + sigmoid_latency;
    }
};

/**
 * Functional model: fixed-point weighted sum + sigmoid table.
 *
 * Unused weight registers hold zero, which is exactly how the hardware
 * disables surplus inputs ("a weight of zero is used to disable a
 * particular input").
 */
class Neuron
{
  public:
    Neuron(const NeuronConfig &config, const SigmoidTable &table);

    /** Load weights: [bias, w_1 .. w_n]; the rest are zeroed. */
    void setWeights(std::span<const double> weights);

    /** Current weights (quantised), including the bias at index 0. */
    std::vector<double> weightsAsDouble() const;

    std::uint32_t maxInputs() const { return config_.max_inputs; }

    /**
     * Evaluate: sigmoid(bias + sum w_j * a_j) over @p inputs
     * (only the first n inputs participate; n <= M).
     */
    HwFixed evaluate(std::span<const HwFixed> inputs) const;

    /** Weighted sum without the activation (for back-prop math). */
    HwFixed weightedSum(std::span<const HwFixed> inputs) const;

    /**
     * Apply the back-propagation weight update
     *     w_j += delta * a_j   (a_0 == 1 for the bias)
     * where @p delta already includes the learning rate.
     */
    void applyUpdate(HwFixed delta, std::span<const HwFixed> inputs);

    /** Raw fixed-point weight at register @p index. */
    HwFixed weightAt(std::size_t index) const;

    void setWeightAt(std::size_t index, HwFixed value);

    const NeuronConfig &config() const { return config_; }

  private:
    NeuronConfig config_;
    const SigmoidTable &table_;
    std::vector<HwFixed> weights_; //!< [bias, w_1 .. w_M].
};

} // namespace act

#endif // ACT_HWNN_NEURON_HH
