/**
 * @file
 * Latency model of a fully configurable, time-multiplexed NPU in the
 * style of Esmaeilzadeh et al. [6], used as the design-comparison
 * baseline for Section IV-A's claim that a partially configurable
 * pipeline avoids scheduling overhead.
 *
 * The NPU maps an arbitrary topology onto a fixed pool of processing
 * engines (PEs). Each layer executes in rounds of at most #PE neurons;
 * every round pays a scheduling/configuration overhead, and each
 * neuron in a round multiply-accumulates its fan-in serially on its
 * PE's single multiply-add unit. Because the PE pool is shared across
 * layers, consecutive inferences cannot be pipelined.
 */

#ifndef ACT_HWNN_NPU_REFERENCE_HH
#define ACT_HWNN_NPU_REFERENCE_HH

#include <cstdint>

#include "common/types.hh"
#include "nn/network.hh"

namespace act
{

/** Parameters of the time-multiplexed reference design. */
struct NpuConfig
{
    std::uint32_t pes = 8;              //!< Processing engines.
    std::uint32_t muladd_latency = 1;   //!< Per multiply-add (cycles).
    std::uint32_t schedule_overhead = 4; //!< Per round: config + dispatch.
    std::uint32_t bus_latency = 1;      //!< Result collection per round.
    std::uint32_t sigmoid_latency = 1;  //!< Activation lookup.
};

/** Latency/throughput estimator for the NPU reference. */
class NpuReference
{
  public:
    explicit NpuReference(const NpuConfig &config) : config_(config) {}

    const NpuConfig &config() const { return config_; }

    /** Cycles to evaluate one input end to end. */
    Cycle inferenceLatency(const Topology &topology) const;

    /**
     * Cycles between accepted inputs in steady state. The PE pool is
     * busy for the whole inference, so this equals the latency.
     */
    Cycle inferenceInterval(const Topology &topology) const
    {
        return inferenceLatency(topology);
    }

    /** Cycles for one on-line training pass (forward + backward). */
    Cycle trainingLatency(const Topology &topology) const;

  private:
    Cycle layerLatency(std::size_t neurons, std::size_t fan_in) const;

    NpuConfig config_;
};

} // namespace act

#endif // ACT_HWNN_NPU_REFERENCE_HH
