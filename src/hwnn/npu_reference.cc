#include "hwnn/npu_reference.hh"

namespace act
{

Cycle
NpuReference::layerLatency(std::size_t neurons, std::size_t fan_in) const
{
    const std::size_t rounds = (neurons + config_.pes - 1) / config_.pes;
    const Cycle per_round = config_.schedule_overhead +
                            static_cast<Cycle>(fan_in + 1) *
                                config_.muladd_latency +
                            config_.sigmoid_latency + config_.bus_latency;
    return static_cast<Cycle>(rounds) * per_round;
}

Cycle
NpuReference::inferenceLatency(const Topology &topology) const
{
    return layerLatency(topology.hidden, topology.inputs) +
           layerLatency(1, topology.hidden);
}

Cycle
NpuReference::trainingLatency(const Topology &topology) const
{
    // Forward pass, then backward error propagation and weight update
    // re-visit both layers; each backward layer costs about as much as
    // its forward counterpart on the shared PEs, plus one extra weight
    // update pass. That yields the same 4x factor the pipelined design
    // exhibits, but on top of the scheduling overhead of every round.
    return 4 * inferenceLatency(topology);
}

} // namespace act
