/**
 * @file
 * The sigmoid lookup table inside each hardware neuron (Figure 6(b)).
 */

#ifndef ACT_HWNN_SIGMOID_TABLE_HH
#define ACT_HWNN_SIGMOID_TABLE_HH

#include <cstddef>
#include <vector>

#include "common/fixed_point.hh"

namespace act
{

/**
 * Fixed-point sigmoid approximation via a symmetric lookup table.
 *
 * The table stores sigmoid samples for inputs in [0, kInputRange];
 * negative inputs use sigmoid(-x) = 1 - sigmoid(x). Inputs beyond the
 * range saturate to 0/1, matching how a bounded hardware table behaves.
 */
class SigmoidTable
{
  public:
    /** Largest input magnitude the table resolves. */
    static constexpr double kInputRange = 8.0;

    /** @param entries Table resolution (hardware default 256). */
    explicit SigmoidTable(std::size_t entries = 256);

    /** Look up sigmoid(x) with linear index truncation. */
    HwFixed lookup(HwFixed x) const;

    std::size_t entries() const { return table_.size(); }

    /** Worst-case absolute error vs. the exact sigmoid over the range. */
    double maxAbsError() const;

  private:
    std::vector<HwFixed> table_;
};

} // namespace act

#endif // ACT_HWNN_SIGMOID_TABLE_HH
