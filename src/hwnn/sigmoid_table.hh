/**
 * @file
 * The sigmoid lookup table inside each hardware neuron (Figure 6(b)).
 */

#ifndef ACT_HWNN_SIGMOID_TABLE_HH
#define ACT_HWNN_SIGMOID_TABLE_HH

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/fixed_point.hh"

namespace act
{

/**
 * Fixed-point sigmoid approximation via a symmetric lookup table.
 *
 * The table stores sigmoid samples for inputs in [0, kInputRange];
 * negative inputs use sigmoid(-x) = 1 - sigmoid(x). Inputs beyond the
 * range saturate to 0/1, matching how a bounded hardware table behaves.
 *
 * The negative branch is precomputed: a second table holds
 * 1 - sigmoid(x) for every entry, so lookup() is a pure select on the
 * sign bit with no data-dependent branch — the hardware equivalent of
 * feeding the accumulator's sign into the table's bank-select line.
 */
class SigmoidTable
{
  public:
    /** Largest input magnitude the table resolves. */
    static constexpr double kInputRange = 8.0;

    /** @param entries Table resolution (hardware default 256). */
    explicit SigmoidTable(std::size_t entries = 256);

    /** Look up sigmoid(x) with linear index truncation. */
    HwFixed
    lookup(HwFixed x) const
    {
        const std::size_t negative = x.raw() < 0;
        const double mag = std::abs(x.toDouble());
        const auto last = static_cast<double>(tables_[0].size() - 1);
        const auto index =
            static_cast<std::size_t>(std::min(mag / kInputRange * last,
                                              last));
        return tables_[negative][index];
    }

    std::size_t entries() const { return tables_[0].size(); }

    /** Worst-case absolute error vs. the exact sigmoid over the range. */
    double maxAbsError() const;

  private:
    /** [0]: sigmoid(x) samples; [1]: 1 - sigmoid(x) complements. */
    std::array<std::vector<HwFixed>, 2> tables_;
};

} // namespace act

#endif // ACT_HWNN_SIGMOID_TABLE_HH
