/**
 * @file
 * The configurable kernel engine behind all prediction workloads.
 *
 * Every SPLASH2 / PARSEC / SPEC / coreutils stand-in is an instance of
 * KernelWorkload parameterised by a KernelSpec: a set of named
 * dependence chains (functions) whose steps produce stable RAW
 * dependences, executed by one or more threads in loop-structured
 * order. Chains model hot loops: each position k has a fixed store/load
 * instruction pair, successive positions follow each other, chain ends
 * wrap to their head, and occasional jumps target other chains' heads —
 * the communication structure Section II-C argues neural networks can
 * learn and generalise over.
 *
 * Knobs per chain: length, inter-thread sharing (producer/consumer with
 * the neighbouring thread), and jump probability; knobs per kernel:
 * thread count, iteration count, and an irregular-access probability
 * that creates rare, hard-to-predict dependences (canneal/mcf-style
 * pointer chasing).
 */

#ifndef ACT_WORKLOADS_KERNEL_HH
#define ACT_WORKLOADS_KERNEL_HH

#include <optional>
#include <string>
#include <vector>

#include "workloads/emitter.hh"
#include "workloads/rare_region.hh"
#include "workloads/workload.hh"

namespace act
{

/** One named dependence chain (a hot function). */
struct ChainSpec
{
    std::string function;     //!< Function name (fig 7b / Table VI).
    std::uint32_t length = 8; //!< Dependence positions in the chain.
    double jump_prob = 0.1;   //!< Chance to jump to another chain head.
    bool shared = false;      //!< Loads read the neighbour thread's data.
};

/** Full kernel description. */
struct KernelSpec
{
    std::string name;
    std::string description;
    std::uint32_t workload_id = 0; //!< Address-space selector.
    std::uint32_t threads = 4;
    std::uint32_t iterations = 600; //!< Steps per thread per scale unit.
    std::vector<ChainSpec> chains;

    /**
     * Input-dependent rare communication (canneal/mcf-style); an
     * emit_prob of zero disables the pool.
     */
    RareRegionConfig rare{120, 12, 0.0};

    double stack_prob = 0.05;    //!< Chance of a filtered stack access.

    /**
     * Chance a step reads a second operand (the previous position's
     * value). Real inner loops average more than one load per
     * iteration; this is what loads the AM close to its service rate.
     */
    double second_load_prob = 0.4;

    /**
     * Chance a step runs an unrolled operand sweep: a burst of
     * back-to-back loads over the chain's recent values. Bursts are
     * what fill the AM's input FIFO and stall retirement.
     */
    double burst_prob = 0.04;

    /** Loads per burst. */
    std::uint32_t burst_length = 6;

    /**
     * Plain instructions between traced events. The kernels model hot
     * loops, where a RAW dependence occurs every handful of
     * instructions — dense enough that the AM's input FIFO sees real
     * pressure (the overhead source of Section III-C).
     */
    std::uint16_t min_gap = 1;
    std::uint16_t max_gap = 5;
};

/** An injected communication bug (Table VI) inside a kernel chain. */
struct InjectedBug
{
    std::uint32_t chain = 0;    //!< Chain the bug lives in.
    std::uint32_t position = 0; //!< Step whose load goes wrong.
    double trigger_point = 0.7; //!< Fraction of the run where it fires.
};

/**
 * The engine: executes a KernelSpec, optionally with an injected bug.
 */
class KernelWorkload : public Workload
{
  public:
    explicit KernelWorkload(KernelSpec spec,
                            std::optional<InjectedBug> bug = std::nullopt);

    std::string name() const override { return spec_.name; }
    std::string description() const override { return spec_.description; }
    std::uint32_t threadCount() const override { return spec_.threads; }

    FailureKind
    failureKind() const override
    {
        return bug_ ? FailureKind::kCrash : FailureKind::kNone;
    }

    BugClass
    bugClass() const override
    {
        return bug_ ? BugClass::kInjected : BugClass::kNone;
    }

    RawDependence buggyDependence() const override;

    void run(TraceSink &sink, const WorkloadParams &params) const override;

    const KernelSpec &spec() const { return spec_; }

    /** Index of the chain implementing @p function; panics if absent. */
    std::uint32_t chainByFunction(const std::string &function) const;

    /** Static load PCs belonging to chain @p chain. */
    std::vector<Pc> chainLoadPcs(std::uint32_t chain) const;

    /** Store PC for chain position (c, k) as thread @p tid executes. */
    Pc storePc(std::uint32_t chain, std::uint32_t position) const;

    /** Load PC for chain position (c, k). */
    Pc loadPc(std::uint32_t chain, std::uint32_t position) const;

  private:
    /** Per-thread chain-walk cursor. */
    struct Cursor
    {
        std::uint32_t chain = 0;
        std::uint32_t position = 0;
    };

    void step(ThreadEmitter &emitter, Cursor &cursor, const AddressMap &map,
              std::uint32_t total_threads, RareRegion *rare,
              bool fire_bug) const;

    KernelSpec spec_;
    std::optional<InjectedBug> bug_;
};

/** Names of all built-in prediction kernels (Table IV rows). */
std::vector<std::string> predictionKernelNames();

/** Names of the concurrent prediction kernels (fig 7b uses these). */
std::vector<std::string> concurrentKernelNames();

/** Build the KernelSpec for a named prediction kernel. */
KernelSpec kernelSpecFor(const std::string &name);

/** Register the prediction kernels with the global registry. */
void registerPredictionKernels();

} // namespace act

#endif // ACT_WORKLOADS_KERNEL_HH
