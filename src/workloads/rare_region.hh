/**
 * @file
 * Input-dependent rare communication: the mechanism behind ACT's
 * residual mispredictions.
 *
 * Real programs have code paths whose activation depends on the input:
 * any single run exercises only a subset, so some RAW dependences of a
 * production run never appeared in the offline-training traces.
 * Section V's overfitting discussion ("when a rare RAW dependence
 * occurs, it may be predicted as invalid") and the per-application
 * misprediction spread of Table IV both stem from this effect.
 *
 * A RareRegion models it: a pool of P rare functions, each owning one
 * stable RAW dependence whose store sits at a per-function
 * pseudo-random distance from its load (log-uniform over a bounded
 * band, so rare dependences never reach the far-out bands reserved for
 * genuinely buggy communication). Every run activates a seeded subset
 * of R functions. Training runs cover part of the pool; a later run's
 * never-covered functions are exactly the rare dependences the network
 * flags.
 */

#ifndef ACT_WORKLOADS_RARE_REGION_HH
#define ACT_WORKLOADS_RARE_REGION_HH

#include <cstdint>
#include <vector>

#include "deps/raw_dependence.hh"
#include "workloads/emitter.hh"

namespace act
{

/** Configuration of a rare-communication pool. */
struct RareRegionConfig
{
    std::uint32_t pool = 120;    //!< Distinct rare functions overall.
    std::uint32_t active = 12;   //!< Functions activated per run.
    double emit_prob = 0.02;     //!< Per-step emission probability.

    /** Log2 bounds of the store->load distance band. */
    double min_log_delta = 2.0;
    double max_log_delta = 13.0;
};

/** Per-run instantiation of the rare pool. */
class RareRegion
{
  public:
    /**
     * @param map      Address map of the owning workload.
     * @param config   Pool shape.
     * @param run_seed Seed selecting this run's active subset.
     */
    RareRegion(const AddressMap &map, const RareRegionConfig &config,
               std::uint64_t run_seed);

    /**
     * With probability config.emit_prob, emit one rare dependence
     * (store followed by load) from the active set on @p emitter.
     */
    void maybeEmit(ThreadEmitter &emitter);

    /** Unconditionally emit one active rare dependence. */
    void emitOne(ThreadEmitter &emitter);

    /** The dependence rare function @p fn produces (fn < pool). */
    RawDependence dependenceFor(std::uint32_t fn) const;

    /** This run's active function ids. */
    const std::vector<std::uint32_t> &activeSet() const { return active_; }

  private:
    /** Load PC of rare function @p fn. */
    Pc loadPcFor(std::uint32_t fn) const;

    /** Store PC of rare function @p fn (load - per-fn delta). */
    Pc storePcFor(std::uint32_t fn) const;

    const AddressMap &map_;
    RareRegionConfig config_;
    std::vector<std::uint32_t> active_;
    Rng rng_;
};

} // namespace act

#endif // ACT_WORKLOADS_RARE_REGION_HH
