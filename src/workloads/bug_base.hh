/**
 * @file
 * Shared machinery for the Table V bug-workload models.
 *
 * Every bug model layers three ingredients:
 *  - noise chains: regular per-thread loop activity that gives the
 *    neural network a normal communication vocabulary to learn;
 *  - a benign-race region: lines written and read by random threads,
 *    whose observed coherence states vary run to run. These races are
 *    harmless, but they flood a sampling-based diagnoser (PBI) with
 *    phantom failure-only predicates when it only gets a handful of
 *    runs to average over — the effect Section VI-C measures;
 *  - the bug scenario itself, emitted by the concrete subclass.
 */

#ifndef ACT_WORKLOADS_BUG_BASE_HH
#define ACT_WORKLOADS_BUG_BASE_HH

#include <string>
#include <vector>

#include "workloads/emitter.hh"
#include "workloads/rare_region.hh"
#include "workloads/workload.hh"

namespace act
{

/** Base class for the real-bug workload models. */
class BugWorkloadBase : public Workload
{
  public:
    std::string name() const override { return name_; }
    std::string description() const override { return description_; }
    std::uint32_t threadCount() const override { return threads_; }
    FailureKind failureKind() const override { return kind_; }
    BugClass bugClass() const override { return class_; }
    RawDependence buggyDependence() const override { return buggy_; }

  protected:
    BugWorkloadBase(std::string name, std::string description,
                    std::uint32_t workload_id, std::uint32_t threads,
                    FailureKind kind, BugClass bug_class);

    /** Function ids reserved by the base-class helpers. */
    static constexpr std::uint32_t kNoiseFnA = 0;
    static constexpr std::uint32_t kNoiseFnB = 1;
    static constexpr std::uint32_t kRaceFn = 9;

    /** Per-thread noise-walk state. */
    struct NoiseState
    {
        std::uint32_t position = 0;
        std::uint32_t chain = kNoiseFnA;
    };

    /**
     * One step of the background loop for one thread: a store/load
     * dependence pair plus the loop branch.
     */
    void noiseStep(ThreadEmitter &emitter, NoiseState &state) const;

    /**
     * Run @p steps rounds of background noise across all threads, with
     * a seeded interleaving.
     */
    void noiseBurst(std::vector<ThreadEmitter> &emitters,
                    std::vector<NoiseState> &states, Rng &master,
                    std::uint32_t steps) const;

    /**
     * Emit @p steps benign-race operations over @p lines shared lines:
     * a random thread stores, another loads. Harmless, but it makes
     * per-run coherence-state coverage sparse.
     */
    void benignRaceBurst(std::vector<ThreadEmitter> &emitters, Rng &master,
                         std::uint32_t lines, std::uint32_t steps) const;

    /**
     * Combined background: @p steps rounds of noise, with benign-race
     * operations at @p race_prob per round over @p race_lines lines and
     * rare-region emissions from @p rare (may be null).
     */
    void mixedBurst(std::vector<ThreadEmitter> &emitters,
                    std::vector<NoiseState> &states, Rng &master,
                    std::uint32_t steps, RareRegion *rare,
                    std::uint32_t race_lines, double race_prob) const;

    /**
     * Emit wrong-path execution: loads and erratic branches at PCs
     * that never run in a correct execution, touching never-written
     * memory. This floods event-based diagnosers with failure-only
     * predicates, but forms no RAW dependences (the locations have no
     * writer), so ACT's Debug Buffer is unaffected.
     */
    void wrongPath(ThreadEmitter &emitter, std::uint32_t count) const;

    /** Build per-thread emitters with forked RNG streams. */
    std::vector<ThreadEmitter> makeEmitters(TraceSink &sink,
                                            Rng &master) const;

    /** Emit thread-create markers from thread 0. */
    void spawnThreads(std::vector<ThreadEmitter> &emitters) const;

    /** Emit thread-exit markers for every thread. */
    void exitThreads(std::vector<ThreadEmitter> &emitters) const;

    const AddressMap &map() const { return map_; }

    /** Noise chain length (dependence positions per noise function). */
    static constexpr std::uint32_t kNoiseLength = 10;

    RawDependence buggy_;

  private:
    std::string name_;
    std::string description_;
    std::uint32_t threads_;
    FailureKind kind_;
    BugClass class_;
    AddressMap map_;
};

} // namespace act

#endif // ACT_WORKLOADS_BUG_BASE_HH
