/**
 * @file
 * The four sequential-bug models of Table V (gzip, seq, ptx, paste),
 * plus bug-workload registration and the Table VI injected-bug
 * helpers.
 *
 * The two semantic bugs are engineered so that branch-outcome
 * predicates carry no signal (the outcomes seen in failing runs all
 * occur in correct runs too), which is why PBI misses them in the
 * paper; the two buffer overflows hand PBI a clean "miss where there
 * was always a hit" predicate, which is why it ranks them well.
 */

#include "workloads/bugs.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workloads/bug_base.hh"

namespace act
{

void registerConcurrentBugWorkloads();

namespace
{

/** Gzip: the Figure 2(d) semantic bug around get_method's fd. */
class GzipWorkload : public BugWorkloadBase
{
  public:
    GzipWorkload()
        : BugWorkloadBase("gzip",
                          "gzip: '-' in the middle of the inputs makes "
                          "get_method read a stale file descriptor",
                          27, 1, FailureKind::kCompletion,
                          BugClass::kSemantic)
    {
        // S3 (open_input_file's store) feeding L2 (the stdin-branch
        // get_method load) never happens in a correct run.
        buggy_ = RawDependence{map().pc(11, 0), map().pc(10, 1), false};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 27));
        auto emitters = makeEmitters(sink, master);
        std::vector<NoiseState> noise(threadCount());
        RareRegion rare(map(), RareRegionConfig{100, 8, 0.01},
                        params.seed);

        const Addr ifd = map().shared(7, 0);
        const std::uint32_t files = 20 * std::max(params.scale, 1u);

        // Input shape: correct runs have '-' first (30%) or no '-';
        // the failing input has '-' in the middle.
        const bool dash_first =
            !params.trigger_failure && master.chance(0.3);
        const std::uint32_t dash_at =
            params.trigger_failure
                ? files / 2
                : (dash_first ? 0 : files + 1);

        emitters[0].store(map().pc(10, 0), ifd); // S1: ifd = 0

        for (std::uint32_t f = 0; f < files; ++f) {
            const bool is_dash = f == dash_at;
            emitters[0].branch(map().pc(10, 8), is_dash);
            if (is_dash) {
                // Stdin path: L2 reads whatever last wrote ifd.
                emitters[0].load(map().pc(10, 1), ifd);
            } else {
                emitters[0].store(map().pc(11, 0), ifd); // S3: open
                emitters[0].load(map().pc(11, 1), ifd);  // L4: use
            }
            // Per-file compression work.
            mixedBurst(emitters, noise, master, 8, &rare, 0, 0.0);
        }
        exitThreads(emitters);
    }
};

/** seq: wrong terminator variable in print_numbers. */
class SeqWorkload : public BugWorkloadBase
{
  public:
    SeqWorkload()
        : BugWorkloadBase("seq",
                          "seq: print_numbers terminates the sequence "
                          "with the separator instead of the terminator",
                          28, 1, FailureKind::kCompletion,
                          BugClass::kSemantic)
    {
        buggy_ = RawDependence{map().pc(10, 0), map().pc(16, 1), false};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 28));
        auto emitters = makeEmitters(sink, master);
        std::vector<NoiseState> noise(threadCount());
        RareRegion rare(map(), RareRegionConfig{100, 8, 0.01},
                        params.seed);

        const Addr sep = map().shared(7, 8);
        const Addr term = map().shared(7, 16);
        const std::uint32_t numbers = 30 * std::max(params.scale, 1u);

        emitters[0].store(map().pc(10, 0), sep);  // default separator
        emitters[0].store(map().pc(16, 0), term); // terminator

        for (std::uint32_t n = 0; n < numbers; ++n) {
            emitters[0].load(map().pc(10, 1), sep); // print separator
            emitters[0].branch(map().pc(10, 8), n + 1 < numbers);
            mixedBurst(emitters, noise, master, 3, &rare, 0, 0.0);
        }
        // Terminator print: the buggy build reads the separator
        // variable instead of the terminator.
        if (params.trigger_failure)
            emitters[0].load(map().pc(16, 1), sep);
        else
            emitters[0].load(map().pc(16, 1), term);
        mixedBurst(emitters, noise, master, 10, &rare, 0, 0.0);
        exitThreads(emitters);
    }
};

/** ptx: buffer overflow while scanning backslash escapes. */
class PtxWorkload : public BugWorkloadBase
{
  public:
    PtxWorkload()
        : BugWorkloadBase("ptx",
                          "ptx: odd number of consecutive backslashes "
                          "drives the scan past the end of string",
                          29, 1, FailureKind::kCompletion,
                          BugClass::kBufferOverflow)
    {
        buggy_ = RawDependence{map().pc(17, 0), map().pc(10, 1), false};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 29));
        auto emitters = makeEmitters(sink, master);
        std::vector<NoiseState> noise(threadCount());
        RareRegion rare(map(), RareRegionConfig{100, 8, 0.02},
                        params.seed);

        const std::uint32_t buf_len = 32;

        // Setup: an unrelated variable sits just past the buffer.
        emitters[0].store(map().pc(17, 0), map().shared(8, buf_len));
        // Input buffering sweeps a large region; by the time the scan
        // loop runs, the adjacent variable's line has left the L1 (its
        // last-writer metadata survives in the L2).
        for (std::uint32_t i = 0; i < 600; ++i) {
            emitters[0].store(map().pc(60, 0), map().shared(10, i * 16));
            emitters[0].load(map().pc(60, 1), map().shared(10, i * 16));
        }
        mixedBurst(emitters, noise, master, 120, &rare, 0, 0.0);

        const std::uint32_t lines = 6 * std::max(params.scale, 1u);
        for (std::uint32_t l = 0; l < lines; ++l) {
            for (std::uint32_t i = 0; i < buf_len; ++i) {
                emitters[0].store(map().pc(10, 0), map().shared(8, i));
                emitters[0].load(map().pc(10, 1), map().shared(8, i));
                emitters[0].branch(map().pc(10, 8), i + 1 < buf_len);
            }
            if (params.trigger_failure && l == lines - 1) {
                // The scan runs one slot past the buffer.
                emitters[0].load(map().pc(10, 1),
                                 map().shared(8, buf_len));
            }
            mixedBurst(emitters, noise, master, 6, &rare, 0, 0.0);
        }
        exitThreads(emitters);
    }
};

/** paste: collapse_escapes reads past the end of its buffer. */
class PasteWorkload : public BugWorkloadBase
{
  public:
    PasteWorkload()
        : BugWorkloadBase("paste",
                          "paste: a trailing backslash makes "
                          "collapse_escapes read past the delimiter "
                          "buffer",
                          30, 1, FailureKind::kCrash,
                          BugClass::kBufferOverflow)
    {
        // The out-of-bound word was written by nearby setup code, so
        // this root cause sits *inside* the rare-communication band:
        // several rare dependences rank below (more negative than) it,
        // which is why ACT's rank is mediocre here while PBI's clean
        // miss-predicate shines (the one Table V row where PBI wins).
        buggy_ = RawDependence{map().pc(8, 514), map().pc(10, 1), false};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 30));
        auto emitters = makeEmitters(sink, master);
        std::vector<NoiseState> noise(threadCount());
        // paste's configuration-dependent paths reach unusually far
        // across the binary (deeper than the overflow's own distance),
        // which is why ACT's rank is mediocre here — the one Table V
        // row where PBI's clean miss-predicate wins.
        RareRegionConfig rare_config{140, 14, 0.04};
        rare_config.min_log_delta = 9.0;
        rare_config.max_log_delta = 15.0;
        RareRegion rare(map(), rare_config, params.seed);

        const std::uint32_t buf_len = 16;

        emitters[0].store(map().pc(8, 514), map().shared(9, buf_len));
        // Delimiter parsing sweeps the input; the overflow target's
        // line leaves the L1 before collapse_escapes runs.
        for (std::uint32_t i = 0; i < 600; ++i) {
            emitters[0].store(map().pc(60, 0), map().shared(10, i * 16));
            emitters[0].load(map().pc(60, 1), map().shared(10, i * 16));
        }
        mixedBurst(emitters, noise, master, 120, &rare, 0, 0.0);

        const std::uint32_t rounds = 10 * std::max(params.scale, 1u);
        for (std::uint32_t r = 0; r < rounds; ++r) {
            for (std::uint32_t i = 0; i < buf_len; ++i) {
                emitters[0].store(map().pc(10, 0), map().shared(9, i));
                emitters[0].load(map().pc(10, 1), map().shared(9, i));
                emitters[0].branch(map().pc(10, 8), i + 1 < buf_len);
            }
            if (params.trigger_failure && r == rounds - 1) {
                emitters[0].load(map().pc(10, 1),
                                 map().shared(9, buf_len));
                emitters[0].load(map().pc(40, 0),
                                 map().shared(9, buf_len));
                return; // crash
            }
            mixedBurst(emitters, noise, master, 5, &rare, 0, 0.0);
        }
        exitThreads(emitters);
    }
};

} // namespace

std::vector<std::string>
realBugNames()
{
    return {"aget",   "apache", "memcached", "mysql1", "mysql2",
            "mysql3", "pbzip2", "gzip",      "seq",    "ptx",
            "paste"};
}

std::vector<InjectedBugTarget>
injectedBugTargets()
{
    return {{"ocean", "TouchArray"},
            {"barnes", "VListInteraction"},
            {"fluidanimate", "ComputeDensitiesMT"},
            {"lu", "TouchA"},
            {"swaptions", "worker"}};
}

std::unique_ptr<KernelWorkload>
makeInjectedWorkload(const std::string &kernel, const std::string &function,
                     std::vector<Finding> *findings)
{
    const auto fail = [findings](const std::string &code,
                                 const std::string &message) {
        if (findings != nullptr) {
            findings->push_back(
                makeFinding("workloads", code, Severity::kError, message));
        }
        return nullptr;
    };

    const auto kernels = predictionKernelNames();
    if (std::find(kernels.begin(), kernels.end(), kernel) == kernels.end())
        return fail("unknown-kernel",
                    "no prediction kernel named '" + kernel + "'");

    const KernelSpec spec = kernelSpecFor(kernel);
    std::uint32_t chain = static_cast<std::uint32_t>(spec.chains.size());
    for (std::uint32_t c = 0; c < spec.chains.size(); ++c) {
        if (spec.chains[c].function == function)
            chain = c;
    }
    if (chain == spec.chains.size())
        return fail("unknown-function", "kernel '" + kernel +
                                            "' has no function named '" +
                                            function + "'");

    InjectedBug bug;
    bug.chain = chain;
    bug.position = spec.chains[chain].length / 2;
    return std::make_unique<KernelWorkload>(spec, bug);
}

void
registerBugWorkloads()
{
    registerConcurrentBugWorkloads();
    auto &registry = WorkloadRegistry::instance();
    if (registry.contains("gzip"))
        return;
    registry.add("gzip", [] { return std::make_unique<GzipWorkload>(); });
    registry.add("seq", [] { return std::make_unique<SeqWorkload>(); });
    registry.add("ptx", [] { return std::make_unique<PtxWorkload>(); });
    registry.add("paste",
                 [] { return std::make_unique<PasteWorkload>(); });
}

} // namespace act
