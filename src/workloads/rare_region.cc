#include "workloads/rare_region.hh"

#include <cmath>

#include "common/hashing.hh"
#include "common/logging.hh"

namespace act
{

namespace
{

/** Rare-function load PCs live in a dedicated function-id area. */
constexpr std::uint32_t kRareFnBase = 300;

} // namespace

RareRegion::RareRegion(const AddressMap &map, const RareRegionConfig &config,
                       std::uint64_t run_seed)
    : map_(map), config_(config),
      rng_(hashCombine(mix64(run_seed), 0x4a4eULL))
{
    ACT_ASSERT(config_.pool >= 1);
    ACT_ASSERT(config_.active >= 1);
    active_.reserve(config_.active);
    for (std::uint32_t j = 0; j < config_.active; ++j) {
        active_.push_back(static_cast<std::uint32_t>(
            hashCombine(mix64(run_seed), j) % config_.pool));
    }
}

Pc
RareRegion::loadPcFor(std::uint32_t fn) const
{
    // Spread rare loads across a band of function ids so the locality
    // feature varies as well.
    return map_.pc(kRareFnBase + fn / 32, (fn % 32) * 2 + 1);
}

Pc
RareRegion::storePcFor(std::uint32_t fn) const
{
    // Per-function pseudo-random communication distance, log-uniform
    // within the configured band, on either side of the load.
    const std::uint64_t h = mix64(0x5a5aULL + fn);
    const double unit = hashToUnit(h);
    const double log_delta =
        config_.min_log_delta +
        unit * (config_.max_log_delta - config_.min_log_delta);
    const auto delta = static_cast<std::int64_t>(std::exp2(log_delta));
    const bool negative = (h & 1) != 0;
    const Pc load = loadPcFor(fn);
    return negative ? load + static_cast<Pc>(delta)
                    : load - static_cast<Pc>(delta);
}

RawDependence
RareRegion::dependenceFor(std::uint32_t fn) const
{
    ACT_ASSERT(fn < config_.pool);
    return RawDependence{storePcFor(fn), loadPcFor(fn), false};
}

void
RareRegion::emitOne(ThreadEmitter &emitter)
{
    const std::uint32_t fn =
        active_[rng_.next(active_.size())];
    const Addr addr = map_.shared(45, fn);
    emitter.store(storePcFor(fn), addr);
    emitter.load(loadPcFor(fn), addr);
}

void
RareRegion::maybeEmit(ThreadEmitter &emitter)
{
    if (emitter.rng().chance(config_.emit_prob))
        emitOne(emitter);
}

} // namespace act
