/**
 * @file
 * Per-thread event emission helper used by all workload models.
 *
 * A ThreadEmitter tracks one logical thread's cursor into the global
 * trace: it stamps events with the thread id, draws realistic "gap"
 * values (plain, untraced instructions between traced events) from the
 * run's RNG, and offers one-call helpers for the common access idioms.
 */

#ifndef ACT_WORKLOADS_EMITTER_HH
#define ACT_WORKLOADS_EMITTER_HH

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace act
{

/** Emits events for one thread into a shared sink. */
class ThreadEmitter
{
  public:
    /**
     * @param sink    Global trace sink (shared by all threads).
     * @param tid     This thread's deterministic id.
     * @param rng     Per-thread RNG stream (for gaps / noise).
     * @param min_gap Smallest gap between traced events.
     * @param max_gap Largest gap between traced events.
     */
    ThreadEmitter(TraceSink &sink, ThreadId tid, Rng rng,
                  std::uint16_t min_gap = 2, std::uint16_t max_gap = 8);

    ThreadId tid() const { return tid_; }

    /** Emit a load; returns the event for inspection. */
    void load(Pc pc, Addr addr, bool stack = false);

    /** Emit a load with an explicit gap (back-to-back bursts). */
    void loadWithGap(Pc pc, Addr addr, std::uint16_t gap);

    /** Emit a store. */
    void store(Pc pc, Addr addr);

    /** Emit a conditional branch with the given outcome. */
    void branch(Pc pc, bool taken);

    /** Emit a lock acquire on @p lock_addr. */
    void lock(Pc pc, Addr lock_addr);

    /** Emit a lock release. */
    void unlock(Pc pc, Addr lock_addr);

    /** Emit a thread-create of @p child. */
    void create(Pc pc, ThreadId child);

    /** Emit this thread's exit marker. */
    void exitThread(Pc pc);

    /** Access the thread's RNG stream. */
    Rng &rng() { return rng_; }

  private:
    TraceEvent make(EventKind kind, Pc pc, Addr addr);

    TraceSink &sink_;
    ThreadId tid_;
    Rng rng_;
    std::uint16_t min_gap_;
    std::uint16_t max_gap_;
};

/**
 * Deterministic address-space layout helper.
 *
 * Each workload gets a disjoint region keyed by a small workload id so
 * traces of different models never alias. Shared arrays, per-thread
 * buffers and stack slots live at fixed offsets within the region.
 */
class AddressMap
{
  public:
    explicit AddressMap(std::uint32_t workload_id);

    /** Address of element @p index of global shared array @p array. */
    Addr shared(std::uint32_t array, std::uint64_t index) const;

    /** Address of element @p index in a per-thread buffer. */
    Addr perThread(ThreadId tid, std::uint32_t array,
                   std::uint64_t index) const;

    /** A stack slot for @p tid (events on it carry the stack flag). */
    Addr stackSlot(ThreadId tid, std::uint32_t slot) const;

    /** Address of lock number @p lock. */
    Addr lockAddr(std::uint32_t lock) const;

    /** Static PC for function @p fn, instruction slot @p slot. */
    Pc pc(std::uint32_t fn, std::uint32_t slot) const;

  private:
    Addr base_;
    Pc pc_base_;
};

} // namespace act

#endif // ACT_WORKLOADS_EMITTER_HH
