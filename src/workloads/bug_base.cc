#include "workloads/bug_base.hh"

#include <algorithm>

#include "common/logging.hh"

namespace act
{

BugWorkloadBase::BugWorkloadBase(std::string name, std::string description,
                                 std::uint32_t workload_id,
                                 std::uint32_t threads, FailureKind kind,
                                 BugClass bug_class)
    : name_(std::move(name)), description_(std::move(description)),
      threads_(threads), kind_(kind), class_(bug_class), map_(workload_id)
{
    ACT_ASSERT(threads_ >= 1);
}

void
BugWorkloadBase::noiseStep(ThreadEmitter &emitter, NoiseState &state) const
{
    const std::uint32_t c = state.chain;
    const std::uint32_t k = state.position;
    const Addr slot = map_.perThread(emitter.tid(), c, k);
    emitter.store(map_.pc(c, 2 * k), slot);
    emitter.load(map_.pc(c, 2 * k + 1), slot);
    const bool jump = emitter.rng().chance(0.08);
    emitter.branch(map_.pc(c, 60), !jump);
    if (jump) {
        state.chain = state.chain == kNoiseFnA ? kNoiseFnB : kNoiseFnA;
        state.position = 0;
    } else {
        state.position = (k + 1) % kNoiseLength;
    }
}

void
BugWorkloadBase::noiseBurst(std::vector<ThreadEmitter> &emitters,
                            std::vector<NoiseState> &states, Rng &master,
                            std::uint32_t steps) const
{
    ACT_ASSERT(states.size() == emitters.size());
    std::vector<std::size_t> order(emitters.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (std::uint32_t s = 0; s < steps; ++s) {
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[master.next(i)]);
        for (const std::size_t t : order)
            noiseStep(emitters[t], states[t]);
    }
}

void
BugWorkloadBase::benignRaceBurst(std::vector<ThreadEmitter> &emitters,
                                 Rng &master, std::uint32_t lines,
                                 std::uint32_t steps) const
{
    if (emitters.size() < 2 || lines == 0)
        return;
    for (std::uint32_t s = 0; s < steps; ++s) {
        const auto line = static_cast<std::uint32_t>(master.next(lines));
        const auto writer = static_cast<std::size_t>(
            master.next(emitters.size()));
        const auto reader = static_cast<std::size_t>(
            master.next(emitters.size()));
        // One store site and one load site per line, so the RAW
        // dependences stay stable and learnable even though the
        // coherence states churn.
        const Addr addr = map_.shared(kRaceFn, line * 16);
        emitters[writer].store(map_.pc(kRaceFn, 2 * line), addr);
        emitters[reader].load(map_.pc(kRaceFn, 2 * line + 1), addr);
    }
}

void
BugWorkloadBase::mixedBurst(std::vector<ThreadEmitter> &emitters,
                            std::vector<NoiseState> &states, Rng &master,
                            std::uint32_t steps, RareRegion *rare,
                            std::uint32_t race_lines,
                            double race_prob) const
{
    for (std::uint32_t s = 0; s < steps; ++s) {
        noiseBurst(emitters, states, master, 1);
        if (race_lines > 0 && master.chance(race_prob))
            benignRaceBurst(emitters, master, race_lines, 1);
        if (rare != nullptr) {
            rare->maybeEmit(
                emitters[master.next(emitters.size())]);
        }
    }
}

void
BugWorkloadBase::wrongPath(ThreadEmitter &emitter,
                           std::uint32_t count) const
{
    for (std::uint32_t i = 0; i < count; ++i) {
        emitter.load(map_.pc(41, i % 56),
                     map_.shared(50, emitter.rng().next(512)));
        if (i % 3 == 0) {
            emitter.branch(map_.pc(42, i % 24),
                           emitter.rng().chance(0.5));
        }
    }
}

std::vector<ThreadEmitter>
BugWorkloadBase::makeEmitters(TraceSink &sink, Rng &master) const
{
    std::vector<ThreadEmitter> emitters;
    emitters.reserve(threads_);
    for (ThreadId t = 0; t < threads_; ++t)
        emitters.emplace_back(sink, t, master.fork(t + 1));
    return emitters;
}

void
BugWorkloadBase::spawnThreads(std::vector<ThreadEmitter> &emitters) const
{
    for (ThreadId t = 1; t < emitters.size(); ++t)
        emitters[0].create(map_.pc(kNoiseFnA, 62), t);
}

void
BugWorkloadBase::exitThreads(std::vector<ThreadEmitter> &emitters) const
{
    for (ThreadId t = 1; t < emitters.size(); ++t)
        emitters[t].exitThread(map_.pc(kNoiseFnA, 63));
    emitters[0].exitThread(map_.pc(kNoiseFnA, 63));
}

} // namespace act
