/**
 * @file
 * Workload models: deterministic stand-ins for the instrumented
 * applications of Section VI-A.
 *
 * The paper traces SPLASH2 / PARSEC / SPEC INT 2006 / GNU coreutils
 * binaries with PIN and injects 11 real + 5 synthetic bugs. This
 * reproduction cannot run those binaries, so each application is
 * modelled as a generator that emits the same interface ACT consumes: a
 * deterministic, seeded stream of per-thread memory / branch / sync
 * events with stable static instruction addresses. Bug workloads can
 * produce both correct executions and the failing interleaving/input,
 * and they export the ground-truth root-cause dependence so benches
 * can score diagnosis ranks.
 */

#ifndef ACT_WORKLOADS_WORKLOAD_HH
#define ACT_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "deps/raw_dependence.hh"
#include "trace/trace.hh"

namespace act
{

/** What a failing execution of a bug workload looks like. */
enum class FailureKind : std::uint8_t
{
    kNone,      //!< Workload has no failure mode (prediction kernel).
    kCrash,     //!< Execution aborts at the failure point.
    kCompletion //!< Runs to completion with ill effects (Table V).
};

/** Per-run parameters. */
struct WorkloadParams
{
    /** Seed controlling input variation and thread interleaving. */
    std::uint64_t seed = 1;

    /** Produce the failing execution (bug workloads only). */
    bool trigger_failure = false;

    /** Work multiplier (iterations scale roughly linearly). */
    std::uint32_t scale = 1;
};

/** Classification of a bug, mirroring Table V's description column. */
enum class BugClass : std::uint8_t
{
    kNone,
    kOrderViolation,
    kAtomicityViolation,
    kSemantic,
    kBufferOverflow,
    kInjected
};

/**
 * Abstract workload.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier, e.g. "lu" or "mysql1". */
    virtual std::string name() const = 0;

    /** One-line description for bench output. */
    virtual std::string description() const = 0;

    /** Number of threads the model spawns. */
    virtual std::uint32_t threadCount() const = 0;

    /** Whether the model is multithreaded. */
    bool concurrent() const { return threadCount() > 1; }

    /** Failure mode; kNone for pure prediction kernels. */
    virtual FailureKind failureKind() const { return FailureKind::kNone; }

    /** Bug classification (kNone for prediction kernels). */
    virtual BugClass bugClass() const { return BugClass::kNone; }

    /**
     * Ground-truth root cause: the invalid RAW dependence the failing
     * execution creates. Only meaningful when failureKind() != kNone.
     */
    virtual RawDependence buggyDependence() const { return {}; }

    /** Execute once, emitting events into @p sink. */
    virtual void run(TraceSink &sink, const WorkloadParams &params) const
        = 0;

    /** Convenience: run into a fresh in-memory trace. */
    Trace record(const WorkloadParams &params) const;
};

/**
 * Global name -> factory registry.
 */
class WorkloadRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Workload>()>;

    static WorkloadRegistry &instance();

    /** Register a factory; panics on duplicate names. */
    void add(const std::string &name, Factory factory);

    /** Instantiate a workload; panics if unknown. */
    std::unique_ptr<Workload> create(const std::string &name) const;

    bool contains(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    WorkloadRegistry() = default;
    std::map<std::string, Factory> factories_;
};

/** Register every built-in workload model (idempotent). */
void registerAllWorkloads();

/** Create a workload by name from the fully populated registry. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace act

#endif // ACT_WORKLOADS_WORKLOAD_HH
