#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/bugs.hh"
#include "workloads/kernel.hh"

namespace act
{

Trace
Workload::record(const WorkloadParams &params) const
{
    Trace trace;
    run(trace, params);
    return trace;
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::add(const std::string &name, Factory factory)
{
    const auto [it, inserted] = factories_.emplace(name, std::move(factory));
    if (!inserted)
        ACT_PANIC("duplicate workload registration: " << name);
}

std::unique_ptr<Workload>
WorkloadRegistry::create(const std::string &name) const
{
    const auto it = factories_.find(name);
    if (it == factories_.end())
        ACT_FATAL("unknown workload: " << name);
    return it->second();
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

void
registerAllWorkloads()
{
    registerPredictionKernels();
    registerBugWorkloads();
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    registerAllWorkloads();
    return WorkloadRegistry::instance().create(name);
}

} // namespace act
