#include "workloads/kernel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace act
{

namespace
{

/** PC slot layout inside a chain's function. */
constexpr std::uint32_t kStoreSlot = 0;  // store for position k: 2k
constexpr std::uint32_t kLoadSlot = 1;   // load for position k: 2k + 1
constexpr std::uint32_t kSecondLoadBase = 32; // second-operand loads
constexpr std::uint32_t kBranchOffset = 64;
constexpr std::uint32_t kBoundaryFn = 90;      // boundary writers (bugs)
constexpr std::uint32_t kWrongPathFn = 99;     // post-bug wrong path

} // namespace

KernelWorkload::KernelWorkload(KernelSpec spec,
                               std::optional<InjectedBug> bug)
    : spec_(std::move(spec)), bug_(bug)
{
    ACT_ASSERT(!spec_.chains.empty());
    ACT_ASSERT(spec_.threads >= 1);
    if (bug_) {
        ACT_ASSERT(bug_->chain < spec_.chains.size());
        ACT_ASSERT(bug_->position < spec_.chains[bug_->chain].length);
    }
}

Pc
KernelWorkload::storePc(std::uint32_t chain, std::uint32_t position) const
{
    const AddressMap map(spec_.workload_id);
    return map.pc(chain, 2 * position + kStoreSlot);
}

Pc
KernelWorkload::loadPc(std::uint32_t chain, std::uint32_t position) const
{
    const AddressMap map(spec_.workload_id);
    return map.pc(chain, 2 * position + kLoadSlot);
}

RawDependence
KernelWorkload::buggyDependence() const
{
    if (!bug_)
        return {};
    const AddressMap map(spec_.workload_id);
    // The failing load reads one slot past its buffer; that slot was
    // written by the boundary initialisation store (the "S1" of the
    // paper's ptx example in Figure 2(e)) in a distant setup function.
    return RawDependence{map.pc(kBoundaryFn + bug_->chain, 0),
                         loadPc(bug_->chain, bug_->position), false};
}

std::uint32_t
KernelWorkload::chainByFunction(const std::string &function) const
{
    for (std::uint32_t c = 0; c < spec_.chains.size(); ++c) {
        if (spec_.chains[c].function == function)
            return c;
    }
    ACT_PANIC("no chain named " << function << " in kernel "
                                << spec_.name);
}

std::vector<Pc>
KernelWorkload::chainLoadPcs(std::uint32_t chain) const
{
    ACT_ASSERT(chain < spec_.chains.size());
    std::vector<Pc> pcs;
    for (std::uint32_t k = 0; k < spec_.chains[chain].length; ++k)
        pcs.push_back(loadPc(chain, k));
    return pcs;
}

void
KernelWorkload::step(ThreadEmitter &emitter, Cursor &cursor,
                     const AddressMap &map, std::uint32_t total_threads,
                     RareRegion *rare, bool fire_bug) const
{
    const std::uint32_t c = cursor.chain;
    const std::uint32_t k = cursor.position;
    const ChainSpec &chain = spec_.chains[c];
    const ThreadId tid = emitter.tid();

    // The store side of this position's dependence.
    const Addr own = chain.shared
                         ? map.shared(c, tid * chain.length + k)
                         : map.perThread(tid, c, k);
    emitter.store(map.pc(c, 2 * k + kStoreSlot), own);

    // The load side: own data, or the neighbouring thread's slot for
    // shared chains (producer/consumer communication).
    Addr read = own;
    if (chain.shared && total_threads > 1) {
        const ThreadId neighbour = (tid + 1) % total_threads;
        read = map.shared(c, neighbour * chain.length + k);
    }
    if (fire_bug) {
        // Injected communication bug: the load runs past the end of
        // the chain's buffer into the neighbouring allocation (its own
        // cache line, so the setup store's last-writer metadata is
        // still resident).
        read = map.shared(c, total_threads * chain.length + 16);
    }
    emitter.load(map.pc(c, 2 * k + kLoadSlot), read);

    // Second operand: the previous position's value, stored by that
    // position's (static) store in an earlier iteration.
    if (emitter.rng().chance(spec_.second_load_prob)) {
        const std::uint32_t prev = (k + chain.length - 1) % chain.length;
        const Addr operand =
            chain.shared ? map.shared(c, tid * chain.length + prev)
                         : map.perThread(tid, c, prev);
        emitter.load(map.pc(c, kSecondLoadBase + k), operand);
    }

    // Unrolled operand sweep: back-to-back loads over recent values
    // (only positions already written this run produce dependences).
    if (emitter.rng().chance(spec_.burst_prob)) {
        for (std::uint32_t b = 0; b < spec_.burst_length; ++b) {
            const std::uint32_t pos = b % chain.length;
            const Addr operand =
                chain.shared ? map.shared(c, tid * chain.length + pos)
                             : map.perThread(tid, c, pos);
            emitter.loadWithGap(map.pc(c, kSecondLoadBase + pos),
                                operand,
                                static_cast<std::uint16_t>(1 + b % 2));
        }
    }

    // Occasional filtered stack traffic.
    if (emitter.rng().chance(spec_.stack_prob)) {
        emitter.store(map.pc(c, kBranchOffset + 2), map.stackSlot(tid, k));
        emitter.load(map.pc(c, kBranchOffset + 3), map.stackSlot(tid, k),
                     /*stack=*/true);
    }

    // Input-dependent rare communication (pointer-chasing flavour).
    if (rare != nullptr)
        rare->maybeEmit(emitter);

    // Advance the walk: loop back edge, or a jump to another chain.
    const bool jump = spec_.chains.size() > 1 &&
                      emitter.rng().chance(chain.jump_prob);
    emitter.branch(map.pc(c, kBranchOffset), !jump);
    if (jump) {
        cursor.chain = static_cast<std::uint32_t>(
            (c + 1 + emitter.rng().next(spec_.chains.size() - 1)) %
            spec_.chains.size());
        cursor.position = 0;
    } else {
        cursor.position = (k + 1) % chain.length;
    }
}

void
KernelWorkload::run(TraceSink &sink, const WorkloadParams &params) const
{
    const AddressMap map(spec_.workload_id);
    Rng master(hashCombine(mix64(params.seed),
                           mix64(spec_.workload_id + 1)));

    std::vector<ThreadEmitter> emitters;
    emitters.reserve(spec_.threads);
    for (ThreadId t = 0; t < spec_.threads; ++t) {
        emitters.emplace_back(sink, t, master.fork(t + 1), spec_.min_gap,
                              spec_.max_gap);
    }

    // Main thread spawns the workers (deterministic ids, §IV-C).
    for (ThreadId t = 1; t < spec_.threads; ++t)
        emitters[0].create(map.pc(0, kBranchOffset + 8), t);

    // Initialise the per-chain boundary words so injected bugs have a
    // well-defined last writer.
    for (std::uint32_t c = 0; c < spec_.chains.size(); ++c) {
        emitters[0].store(map.pc(kBoundaryFn + c, 0),
                          map.shared(c, spec_.threads *
                                                spec_.chains[c].length +
                                            16));
    }

    const std::uint64_t iterations =
        static_cast<std::uint64_t>(spec_.iterations) *
        std::max<std::uint32_t>(params.scale, 1);
    const std::uint64_t bug_iteration =
        bug_ ? static_cast<std::uint64_t>(
                   static_cast<double>(iterations) * bug_->trigger_point)
             : iterations + 1;

    std::optional<RareRegion> rare;
    if (spec_.rare.emit_prob > 0.0)
        rare.emplace(map, spec_.rare, params.seed);

    std::vector<Cursor> cursors(spec_.threads);
    // Start threads spread across chains for interleaving variety.
    for (ThreadId t = 0; t < spec_.threads; ++t)
        cursors[t].chain = t % spec_.chains.size();

    std::vector<ThreadId> order(spec_.threads);
    for (ThreadId t = 0; t < spec_.threads; ++t)
        order[t] = t;

    bool crashed = false;
    for (std::uint64_t iter = 0; iter < iterations && !crashed; ++iter) {
        // Rotate thread service order to vary the interleaving.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[master.next(i)]);

        const bool bug_now =
            params.trigger_failure && bug_ && iter == bug_iteration;
        for (const ThreadId t : order) {
            bool fire = false;
            if (bug_now && t == 0) {
                // Steer thread 0 into the buggy function: two normal
                // steps reach the faulty position, then the overflow
                // fires.
                const std::uint32_t len =
                    spec_.chains[bug_->chain].length;
                cursors[0].chain = bug_->chain;
                cursors[0].position = (bug_->position + len - 2) % len;
                step(emitters[0], cursors[0], map, spec_.threads,
                     nullptr, false);
                step(emitters[0], cursors[0], map, spec_.threads,
                     nullptr, false);
                // The warm-up steps may have jumped chains; re-pin the
                // faulty site before firing.
                cursors[0].chain = bug_->chain;
                cursors[0].position = bug_->position;
                fire = true;
            }
            step(emitters[t], cursors[t], map, spec_.threads,
                 rare ? &*rare : nullptr, fire);
            if (fire) {
                // Short wrong path before the crash: the corrupted
                // value propagates through a few more loads.
                for (std::uint32_t w = 0; w < 4; ++w) {
                    emitters[0].load(
                        map.pc(kWrongPathFn, w),
                        map.shared(bug_->chain,
                                   spec_.threads *
                                       spec_.chains[bug_->chain].length));
                }
                crashed = true;
                break;
            }
        }
    }

    if (!crashed) {
        for (ThreadId t = 1; t < spec_.threads; ++t)
            emitters[t].exitThread(map.pc(0, kBranchOffset + 9));
        emitters[0].exitThread(map.pc(0, kBranchOffset + 9));
    }
}

} // namespace act
