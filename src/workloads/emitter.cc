#include "workloads/emitter.hh"

#include "common/logging.hh"

namespace act
{

ThreadEmitter::ThreadEmitter(TraceSink &sink, ThreadId tid, Rng rng,
                             std::uint16_t min_gap, std::uint16_t max_gap)
    : sink_(sink), tid_(tid), rng_(rng), min_gap_(min_gap),
      max_gap_(max_gap)
{
    ACT_ASSERT(min_gap_ <= max_gap_);
}

TraceEvent
ThreadEmitter::make(EventKind kind, Pc pc, Addr addr)
{
    TraceEvent event;
    event.tid = tid_;
    event.kind = kind;
    event.pc = pc;
    event.addr = addr;
    event.gap = static_cast<std::uint16_t>(
        rng_.range(min_gap_, max_gap_));
    return event;
}

void
ThreadEmitter::load(Pc pc, Addr addr, bool stack)
{
    TraceEvent event = make(EventKind::kLoad, pc, addr);
    event.stack = stack;
    sink_.append(event);
}

void
ThreadEmitter::loadWithGap(Pc pc, Addr addr, std::uint16_t gap)
{
    TraceEvent event = make(EventKind::kLoad, pc, addr);
    event.gap = gap;
    sink_.append(event);
}

void
ThreadEmitter::store(Pc pc, Addr addr)
{
    sink_.append(make(EventKind::kStore, pc, addr));
}

void
ThreadEmitter::branch(Pc pc, bool taken)
{
    TraceEvent event = make(EventKind::kBranch, pc, 0);
    event.taken = taken;
    sink_.append(event);
}

void
ThreadEmitter::lock(Pc pc, Addr lock_addr)
{
    sink_.append(make(EventKind::kLock, pc, lock_addr));
}

void
ThreadEmitter::unlock(Pc pc, Addr lock_addr)
{
    sink_.append(make(EventKind::kUnlock, pc, lock_addr));
}

void
ThreadEmitter::create(Pc pc, ThreadId child)
{
    sink_.append(make(EventKind::kThreadCreate, pc, child));
}

void
ThreadEmitter::exitThread(Pc pc)
{
    sink_.append(make(EventKind::kThreadExit, pc, 0));
}

AddressMap::AddressMap(std::uint32_t workload_id)
    : base_(Addr{0x10000000} +
            static_cast<Addr>(workload_id) * Addr{0x10000000}),
      pc_base_(Pc{0x400000} + static_cast<Pc>(workload_id) * Pc{0x100000})
{
}

Addr
AddressMap::shared(std::uint32_t array, std::uint64_t index) const
{
    return base_ + static_cast<Addr>(array) * Addr{0x100000} + index * 4;
}

Addr
AddressMap::perThread(ThreadId tid, std::uint32_t array,
                      std::uint64_t index) const
{
    return base_ + Addr{0x4000000} +
           static_cast<Addr>(tid) * Addr{0x400000} +
           static_cast<Addr>(array) * Addr{0x40000} + index * 4;
}

Addr
AddressMap::stackSlot(ThreadId tid, std::uint32_t slot) const
{
    return base_ + Addr{0xc000000} +
           static_cast<Addr>(tid) * Addr{0x10000} + slot * 4;
}

Addr
AddressMap::lockAddr(std::uint32_t lock) const
{
    return base_ + Addr{0xe000000} + static_cast<Addr>(lock) * 64;
}

Pc
AddressMap::pc(std::uint32_t fn, std::uint32_t slot) const
{
    return pc_base_ + static_cast<Pc>(fn) * Pc{0x1000} + slot * 4;
}

} // namespace act
