/**
 * @file
 * The seven concurrency-bug models of Table V.
 *
 * Each model reproduces the application's failure at the
 * RAW-dependence level, including the properties Section VI-C relies
 * on when comparing against Aviso and PBI:
 *  - Aget: the buggy load observes the same cache event (a miss on a
 *    line another thread wrote) in correct and failing runs, so PBI's
 *    predicates cannot discriminate;
 *  - Apache: hundreds of events separate the premature free from the
 *    crashing use, so Aviso never captures the pair as a constraint;
 *  - MySQL#1: the corruption is silent and the run continues for a
 *    long time, so the root cause sinks deep into the Debug Buffer
 *    (beyond the default 60 entries);
 *  - MySQL#3: the racing store and the crashing load are far apart and
 *    the line's coherence state churns in correct runs too, so PBI
 *    sees no consistent pattern;
 *  - PBzip2: the consumer's "queue non-empty" branch flips outcome
 *    only in failing runs, handing PBI a rank-1 predicate.
 */

#include "workloads/bugs.hh"

#include "common/logging.hh"
#include "workloads/bug_base.hh"

namespace act
{

namespace
{

/** Aget: order violation on bwritten (Table V row 1). */
class AgetWorkload : public BugWorkloadBase
{
  public:
    AgetWorkload()
        : BugWorkloadBase("aget",
                          "Aget: order violation on bwritten between the "
                          "downloader and the signal handler",
                          20, 2, FailureKind::kCompletion,
                          BugClass::kOrderViolation)
    {
        buggy_ = RawDependence{map().pc(10, 0), map().pc(12, 1), true};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 20));
        auto emitters = makeEmitters(sink, master);
        spawnThreads(emitters);
        std::vector<NoiseState> noise(threadCount());
        RareRegion rare(map(), RareRegionConfig{150, 12, 0.015},
                        params.seed);

        const Addr bwritten = map().shared(2, 0);
        const std::uint32_t iters = 260 * std::max(params.scale, 1u);
        const auto signal_at = static_cast<std::uint32_t>(
            iters * 2 / 5 + master.next(iters * 11 / 20));

        for (std::uint32_t i = 0; i < iters; ++i) {
            // Downloader updates the progress counter and re-reads it.
            emitters[0].store(map().pc(10, 0), bwritten);
            emitters[0].load(map().pc(10, 1), bwritten);
            mixedBurst(emitters, noise, master, 1, &rare, 6, 0.1);
            if (params.trigger_failure && i == signal_at) {
                // The signal handler fires mid-download and reads the
                // partially updated counter: S_w1 -> L_r.
                emitters[1].load(map().pc(12, 1), bwritten);
            }
        }
        // Normal termination: housekeeping (connection teardown),
        // then the final flush, then (in correct runs) the
        // handler/saver reads the completed counter: S_w2 -> L_r. The
        // housekeeping keeps the last mid-download update well away
        // from the read — only the racy signal packs them together.
        benignRaceBurst(emitters, master, 6, 12);
        emitters[0].store(map().pc(13, 0), bwritten);
        if (!params.trigger_failure)
            emitters[1].load(map().pc(12, 1), bwritten);
        mixedBurst(emitters, noise, master, 40, &rare, 6, 0.1);
        exitThreads(emitters);
    }
};

/** Apache: atomicity violation on a reference counter (row 2). */
class ApacheWorkload : public BugWorkloadBase
{
  public:
    ApacheWorkload()
        : BugWorkloadBase("apache",
                          "Apache: atomicity violation on an object "
                          "reference counter causes a premature free",
                          21, 2, FailureKind::kCrash,
                          BugClass::kAtomicityViolation)
    {
        buggy_ = RawDependence{map().pc(20, 0), map().pc(12, 1), true};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 21));
        auto emitters = makeEmitters(sink, master);
        spawnThreads(emitters);
        std::vector<NoiseState> noise(threadCount());
        RareRegion rare(map(), RareRegionConfig{150, 12, 0.02},
                        params.seed);

        const Addr obj = map().shared(3, 0);
        const Addr cnt = map().shared(3, 16);
        const Addr lock0 = map().lockAddr(0);
        const std::uint32_t iters = 200 * std::max(params.scale, 1u);
        const auto bug_at = static_cast<std::uint32_t>(
            iters * 17 / 20 + master.next(iters / 20));

        emitters[0].store(map().pc(13, 0), obj); // allocation
        // Both threads touch the object once at start (registration),
        // so in correct runs every later use hits a Shared line — only
        // the premature free can invalidate it.
        emitters[0].load(map().pc(12, 2), obj);
        emitters[1].load(map().pc(12, 2), obj);

        for (std::uint32_t i = 0; i < iters; ++i) {
            const auto t = static_cast<std::size_t>(master.next(2));
            if (params.trigger_failure && i == bug_at) {
                // T1 starts an unprotected decrement; T0's decrement
                // interleaves, sees zero, and frees the object.
                emitters[1].load(map().pc(10, 1), cnt);
                emitters[0].load(map().pc(10, 1), cnt);
                emitters[0].store(map().pc(10, 0), cnt);
                emitters[0].branch(map().pc(10, 6), true);
                emitters[0].store(map().pc(20, 0), obj); // free
                // Long unrelated stretch: the crash happens far from
                // the root cause (Aviso's window cannot span it).
                mixedBurst(emitters, noise, master, 300, &rare, 40, 0.5);
                emitters[1].load(map().pc(12, 1), obj); // S_free -> L_use
                // The corrupted pointer sends the worker down a long
                // wrong path before the crash is detected.
                wrongPath(emitters[1], 60);
                return; // crash
            }
            emitters[t].lock(map().pc(10, 4), lock0);
            emitters[t].load(map().pc(10, 1), cnt);
            emitters[t].store(map().pc(10, 0), cnt);
            emitters[t].unlock(map().pc(10, 5), lock0);
            emitters[t].load(map().pc(12, 1), obj); // S_alloc -> L_use
            mixedBurst(emitters, noise, master, 1, &rare, 40, 0.5);
        }
        emitters[0].store(map().pc(20, 0), obj); // final free
        exitThreads(emitters);
    }
};

/** Memcached: atomicity violation on item data (row 3). */
class MemcachedWorkload : public BugWorkloadBase
{
  public:
    MemcachedWorkload()
        : BugWorkloadBase("memcached",
                          "Memcached: unlocked fast-path store to item "
                          "data races with a locked read-check-use",
                          22, 2, FailureKind::kCompletion,
                          BugClass::kAtomicityViolation)
    {
        buggy_ = RawDependence{map().pc(24, 0), map().pc(12, 1), true};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 22));
        auto emitters = makeEmitters(sink, master);
        spawnThreads(emitters);
        std::vector<NoiseState> noise(threadCount());
        RareRegion rare(map(), RareRegionConfig{150, 12, 0.02},
                        params.seed);

        const Addr item = map().shared(4, 0);
        const Addr lock1 = map().lockAddr(1);
        const std::uint32_t iters = 200 * std::max(params.scale, 1u);
        const auto bug_at = static_cast<std::uint32_t>(
            iters * 9 / 10 + master.next(iters / 12));

        for (std::uint32_t i = 0; i < iters; ++i) {
            const auto writer = static_cast<std::size_t>(master.next(2));
            const std::size_t reader = 1 - writer;
            emitters[writer].lock(map().pc(13, 4), lock1);
            emitters[writer].store(map().pc(13, 0), item);
            emitters[writer].unlock(map().pc(13, 5), lock1);

            emitters[reader].lock(map().pc(12, 4), lock1);
            emitters[reader].load(map().pc(12, 0), item); // check
            if (params.trigger_failure && i == bug_at) {
                // The other thread's unlocked fast path slips between
                // the check and the use.
                emitters[writer].store(map().pc(24, 0), item);
            }
            emitters[reader].load(map().pc(12, 1), item); // use
            if (params.trigger_failure && i >= bug_at) {
                // The corrupted item steers response formatting down
                // never-taken paths for the rest of the run.
                wrongPath(emitters[reader], 4);
            }
            emitters[reader].unlock(map().pc(12, 5), lock1);
            mixedBurst(emitters, noise, master, 1, &rare, 10, 0.25);
        }
        mixedBurst(emitters, noise, master, 30, &rare, 10, 0.25);
        exitThreads(emitters);
    }
};

/** MySQL#1: atomicity violation causing silent loss of logged data. */
class Mysql1Workload : public BugWorkloadBase
{
  public:
    Mysql1Workload()
        : BugWorkloadBase("mysql1",
                          "MySQL#1: racy binlog rotation loses logged "
                          "data; the failure surfaces much later",
                          23, 2, FailureKind::kCompletion,
                          BugClass::kAtomicityViolation)
    {
        buggy_ = RawDependence{map().pc(25, 0), map().pc(12, 1), true};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 23));
        auto emitters = makeEmitters(sink, master);
        spawnThreads(emitters);
        std::vector<NoiseState> noise(threadCount());
        // Large input-dependent surface: MySQL exercises many
        // configuration-dependent paths, which keeps flagging rare
        // dependences long after the silent corruption.
        RareRegion rare(map(), RareRegionConfig{1600, 120, 0.5},
                        params.seed);

        const Addr logpos = map().shared(5, 0);
        const Addr lock2 = map().lockAddr(2);
        const std::uint32_t iters = 2000 * std::max(params.scale, 1u);
        const auto bug_at = static_cast<std::uint32_t>(
            iters / 5 + master.next(iters / 20));

        for (std::uint32_t i = 0; i < iters; ++i) {
            emitters[0].lock(map().pc(13, 4), lock2);
            emitters[0].store(map().pc(13, 0), logpos);
            emitters[0].unlock(map().pc(13, 5), lock2);
            if (params.trigger_failure && i == bug_at) {
                // Rotation thread updates the position without the
                // lock; the writer reads the rotated value and the
                // pending records are lost silently.
                emitters[1].store(map().pc(25, 0), logpos);
            }
            emitters[0].load(map().pc(12, 1), logpos);
            if (params.trigger_failure && i >= bug_at &&
                master.chance(0.04)) {
                // Diverged log offsets exercise recovery paths that a
                // correct run never touches.
                wrongPath(emitters[1], 3);
            }
            mixedBurst(emitters, noise, master, 1, &rare, 12, 0.25);
        }
        exitThreads(emitters);
    }
};

/** MySQL#2: atomicity violation on thd->proc_info (row 5). */
class Mysql2Workload : public BugWorkloadBase
{
  public:
    Mysql2Workload()
        : BugWorkloadBase("mysql2",
                          "MySQL#2: another session nulls thd->proc_info "
                          "between the owner's set and use",
                          24, 2, FailureKind::kCrash,
                          BugClass::kAtomicityViolation)
    {
        buggy_ = RawDependence{map().pc(26, 0), map().pc(12, 1), true};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 24));
        auto emitters = makeEmitters(sink, master);
        spawnThreads(emitters);
        std::vector<NoiseState> noise(threadCount());
        RareRegion rare(map(), RareRegionConfig{150, 12, 0.02},
                        params.seed);

        const Addr proc = map().shared(5, 32);
        const Addr lock3 = map().lockAddr(3);
        const std::uint32_t iters = 250 * std::max(params.scale, 1u);
        const auto bug_at = static_cast<std::uint32_t>(
            iters * 22 / 25 + master.next(iters / 25));

        for (std::uint32_t i = 0; i < iters; ++i) {
            if (params.trigger_failure && i == bug_at) {
                emitters[0].store(map().pc(13, 0), proc); // set
                emitters[1].store(map().pc(26, 0), proc); // racy NULL
                emitters[0].load(map().pc(12, 1), proc);  // use -> crash
                wrongPath(emitters[0], 40);
                return;
            }
            emitters[1].lock(map().pc(26, 4), lock3);
            emitters[1].store(map().pc(26, 0), proc); // proper clear
            emitters[1].unlock(map().pc(26, 5), lock3);
            // Unrelated session work separates the proper clear from
            // the owner's set/use; only the racy clear runs tight.
            benignRaceBurst(emitters, master, 25, 5);
            emitters[0].lock(map().pc(13, 4), lock3);
            emitters[0].store(map().pc(13, 0), proc);
            emitters[0].load(map().pc(12, 1), proc);
            emitters[0].unlock(map().pc(13, 5), lock3);
            mixedBurst(emitters, noise, master, 1, &rare, 25, 0.4);
        }
        exitThreads(emitters);
    }
};

/** MySQL#3: atomicity violation in join_init_cache (row 6). */
class Mysql3Workload : public BugWorkloadBase
{
  public:
    Mysql3Workload()
        : BugWorkloadBase("mysql3",
                          "MySQL#3: racy cache-size update causes an "
                          "out-of-bound scan loop",
                          25, 3, FailureKind::kCrash,
                          BugClass::kAtomicityViolation)
    {
        buggy_ = RawDependence{map().pc(27, 0), map().pc(12, 1), true};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 25));
        auto emitters = makeEmitters(sink, master);
        spawnThreads(emitters);
        std::vector<NoiseState> noise(threadCount());
        // MySQL's join path exercises a compact configuration surface;
        // most of its rare communication recurs across runs.
        RareRegion rare(map(), RareRegionConfig{60, 12, 0.02},
                        params.seed);

        const Addr size_word = map().shared(5, 64);
        const Addr ping_word = map().shared(5, 66); // same line, other word
        const std::uint32_t iters = 150 * std::max(params.scale, 1u);
        const auto bug_at = static_cast<std::uint32_t>(
            iters * 4 / 5 + master.next(iters / 10));

        // Initialise the overflow region the out-of-bound loop walks.
        for (std::uint32_t k = 0; k < 8; ++k)
            emitters[0].store(map().pc(28, 0), map().shared(5, 70 + k));

        for (std::uint32_t i = 0; i < iters; ++i) {
            emitters[0].store(map().pc(13, 0), size_word);
            // Far-apart use: the cache line ping-pongs meanwhile, so
            // the state the eventual load observes is inconsistent
            // across runs even when nothing is wrong.
            for (std::uint32_t p = 0; p < 12; ++p) {
                const std::size_t t = 1 + master.next(2);
                if (master.chance(0.5))
                    emitters[t].store(map().pc(14, 0), ping_word);
                else
                    emitters[t].load(map().pc(14, 1), size_word);
                mixedBurst(emitters, noise, master, 1, &rare, 5, 0.15);
            }
            if (params.trigger_failure && i == bug_at) {
                emitters[1].store(map().pc(27, 0), size_word); // racy grow
                mixedBurst(emitters, noise, master, 10, &rare, 5, 0.15);
                emitters[0].load(map().pc(12, 1), size_word);
                // Out-of-bound loop before the crash.
                for (std::uint32_t w = 0; w < 16; ++w) {
                    emitters[0].load(map().pc(40, w % 5),
                                     map().shared(5, 70 + (w % 8)));
                }
                return;
            }
            emitters[0].load(map().pc(12, 1), size_word);
        }
        exitThreads(emitters);
    }
};

/** PBzip2: order violation between main and consumer (row 7). */
class Pbzip2Workload : public BugWorkloadBase
{
  public:
    Pbzip2Workload()
        : BugWorkloadBase("pbzip2",
                          "PBzip2: main frees the fifo before the "
                          "consumer drains it",
                          26, 3, FailureKind::kCrash,
                          BugClass::kOrderViolation)
    {
        buggy_ = RawDependence{map().pc(29, 0), map().pc(12, 1), true};
    }

    void
    run(TraceSink &sink, const WorkloadParams &params) const override
    {
        Rng master(hashCombine(mix64(params.seed), 26));
        auto emitters = makeEmitters(sink, master);
        spawnThreads(emitters);
        std::vector<NoiseState> noise(threadCount());
        RareRegion rare(map(), RareRegionConfig{120, 10, 0.015},
                        params.seed);

        const std::uint32_t ring = 8;
        const std::uint32_t iters = 220 * std::max(params.scale, 1u);
        const auto bug_at = static_cast<std::uint32_t>(
            iters * 9 / 10 + master.next(iters / 15));

        for (std::uint32_t i = 0; i < iters; ++i) {
            const Addr slot = map().shared(6, i % ring);
            emitters[1].store(map().pc(13, 0), slot); // producer
            if (params.trigger_failure && i == bug_at) {
                // Main frees the fifo before the consumer's read.
                for (std::uint32_t k = 0; k < ring; ++k)
                    emitters[0].store(map().pc(29, 0),
                                      map().shared(6, k));
                // Consumer's emptiness check takes the never-seen
                // outcome, then touches the freed slot.
                emitters[2].branch(map().pc(12, 4), false);
                emitters[2].load(map().pc(12, 1), slot);
                for (std::uint32_t w = 0; w < 2; ++w)
                    emitters[2].load(map().pc(40, w), slot);
                return;
            }
            emitters[2].branch(map().pc(12, 4), true);
            emitters[2].load(map().pc(12, 1), slot); // consumer
            mixedBurst(emitters, noise, master, 1, &rare, 4, 0.1);
        }
        // Orderly shutdown: free after the consumer is done.
        for (std::uint32_t k = 0; k < ring; ++k)
            emitters[0].store(map().pc(29, 0), map().shared(6, k));
        exitThreads(emitters);
    }
};

} // namespace

void
registerConcurrentBugWorkloads()
{
    auto &registry = WorkloadRegistry::instance();
    if (registry.contains("aget"))
        return;
    registry.add("aget", [] { return std::make_unique<AgetWorkload>(); });
    registry.add("apache",
                 [] { return std::make_unique<ApacheWorkload>(); });
    registry.add("memcached",
                 [] { return std::make_unique<MemcachedWorkload>(); });
    registry.add("mysql1",
                 [] { return std::make_unique<Mysql1Workload>(); });
    registry.add("mysql2",
                 [] { return std::make_unique<Mysql2Workload>(); });
    registry.add("mysql3",
                 [] { return std::make_unique<Mysql3Workload>(); });
    registry.add("pbzip2",
                 [] { return std::make_unique<Pbzip2Workload>(); });
}

} // namespace act
