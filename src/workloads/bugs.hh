/**
 * @file
 * The 11 real-world bug models of Table V and the 5 injected bugs of
 * Table VI.
 *
 * Each real bug reproduces, at the RAW-dependence level, the failure
 * pattern the paper describes for the corresponding application
 * (Section II-B and Table V), including the properties that drive the
 * baseline comparisons: whether Aviso can observe constraint events
 * near the failure, and whether PBI's cache-state / branch predicates
 * differ between correct and failing runs.
 */

#ifndef ACT_WORKLOADS_BUGS_HH
#define ACT_WORKLOADS_BUGS_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "workloads/kernel.hh"
#include "workloads/workload.hh"

namespace act
{

/** Names of the 11 real-bug workloads, in Table V order. */
std::vector<std::string> realBugNames();

/** (kernel, function) pairs hosting the 5 injected bugs (Table VI). */
struct InjectedBugTarget
{
    std::string kernel;
    std::string function;
};

std::vector<InjectedBugTarget> injectedBugTargets();

/**
 * Build a prediction kernel with a communication bug injected into the
 * named function (Table VI methodology: the function is treated as new
 * code, excluded from training).
 *
 * On an unknown kernel or a function the kernel does not define,
 * returns nullptr and — when @p findings is non-null — appends one
 * structured error (pass "workloads", code "unknown-kernel" or
 * "unknown-function") instead of aborting the process.
 */
std::unique_ptr<KernelWorkload> makeInjectedWorkload(
    const std::string &kernel, const std::string &function,
    std::vector<Finding> *findings = nullptr);

/** Register the real-bug workloads with the global registry. */
void registerBugWorkloads();

} // namespace act

#endif // ACT_WORKLOADS_BUGS_HH
