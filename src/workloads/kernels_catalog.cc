/**
 * @file
 * Catalogue of named prediction kernels (the Table IV programs).
 *
 * Chain lengths, sharing patterns and irregularity levels are chosen to
 * evoke each real application's hot loops: regular data-parallel codes
 * (lu, fft, ocean, fluidanimate, streamcluster, swaptions) have long
 * mostly-deterministic chains with producer/consumer sharing; irregular
 * codes (barnes, canneal, mcf) add rare pointer-chasing accesses, which
 * is what drives their higher misprediction rates in Table IV.
 */

#include "workloads/kernel.hh"

#include "common/logging.hh"

namespace act
{

namespace
{

struct CatalogEntry
{
    const char *name;
    bool concurrent;
};

constexpr CatalogEntry kCatalog[] = {
    {"lu", true},           {"fft", true},
    {"radix", true},        {"ocean", true},
    {"barnes", true},       {"canneal", true},
    {"fluidanimate", true}, {"streamcluster", true},
    {"swaptions", true},    {"bzip2", false},
    {"mcf", false},         {"bc", false},
};

} // namespace

KernelSpec
kernelSpecFor(const std::string &name)
{
    KernelSpec spec;
    spec.name = name;
    if (name == "lu") {
        spec.description = "SPLASH2 lu: blocked dense LU factorisation";
        spec.workload_id = 1;
        spec.threads = 4;
        spec.chains = {{"TouchA", 10, 0.06, false},
                       {"lu_factor", 12, 0.08, true},
                       {"bmod", 8, 0.08, true}};
        spec.burst_prob = 0.2;
    } else if (name == "fft") {
        spec.description = "SPLASH2 fft: six-step 1D FFT";
        spec.workload_id = 2;
        spec.threads = 4;
        spec.chains = {{"Transpose", 10, 0.06, true},
                       {"FFT1DOnce", 12, 0.06, false}};
        spec.burst_prob = 0.12;
    } else if (name == "radix") {
        spec.description = "SPLASH2 radix: integer radix sort";
        spec.workload_id = 3;
        spec.threads = 4;
        spec.chains = {{"slave_sort", 12, 0.07, true},
                       {"rank", 8, 0.08, false}};
        spec.burst_prob = 0.2;
    } else if (name == "ocean") {
        spec.description = "SPLASH2 ocean: red-black grid solver";
        spec.workload_id = 4;
        spec.threads = 4;
        spec.chains = {{"TouchArray", 10, 0.05, true},
                       {"relax", 12, 0.06, true},
                       {"multig", 6, 0.1, false}};
        spec.burst_prob = 0.18;
    } else if (name == "barnes") {
        spec.description = "SPLASH2 barnes: Barnes-Hut N-body";
        spec.workload_id = 5;
        spec.threads = 4;
        spec.chains = {{"VListInteraction", 8, 0.1, false},
                       {"gravsub", 10, 0.1, true},
                       {"maketree", 6, 0.12, false}};
        spec.burst_prob = 0.1;
        spec.rare = RareRegionConfig{300, 40, 0.035};
    } else if (name == "canneal") {
        spec.description = "PARSEC canneal: simulated annealing of "
                           "netlist placement";
        spec.workload_id = 6;
        spec.threads = 4;
        spec.chains = {{"swap_cost", 10, 0.09, true},
                       {"netlist_elem", 8, 0.1, false}};
        spec.burst_prob = 0.18;
        spec.rare = RareRegionConfig{400, 60, 0.05};
    } else if (name == "fluidanimate") {
        spec.description = "PARSEC fluidanimate: SPH fluid simulation";
        spec.workload_id = 7;
        spec.threads = 4;
        spec.chains = {{"ComputeDensitiesMT", 12, 0.05, true},
                       {"ComputeForcesMT", 10, 0.05, true}};
        spec.burst_prob = 0.3;
    } else if (name == "streamcluster") {
        spec.description = "PARSEC streamcluster: online clustering";
        spec.workload_id = 8;
        spec.threads = 4;
        spec.chains = {{"dist", 12, 0.05, false},
                       {"pgain", 10, 0.07, true}};
        spec.burst_prob = 0.1;
    } else if (name == "swaptions") {
        spec.description = "PARSEC swaptions: HJM Monte-Carlo pricing";
        spec.workload_id = 9;
        spec.threads = 4;
        spec.chains = {{"worker", 14, 0.04, false},
                       {"HJM_SimPath", 10, 0.05, false}};
        spec.burst_prob = 0.02;
    } else if (name == "bzip2") {
        spec.description = "SPEC INT 2006 bzip2: block compression";
        spec.workload_id = 10;
        spec.threads = 1;
        spec.chains = {{"compressBlock", 14, 0.06, false},
                       {"sortIt", 10, 0.08, false}};
        spec.burst_prob = 0.017;
    } else if (name == "mcf") {
        spec.description = "SPEC INT 2006 mcf: network simplex";
        spec.workload_id = 11;
        spec.threads = 1;
        spec.chains = {{"refresh_potential", 10, 0.09, false},
                       {"price_out_impl", 8, 0.1, false}};
        spec.burst_prob = 0.012;
        spec.rare = RareRegionConfig{300, 45, 0.06};
    } else if (name == "bc") {
        spec.description = "GNU bc: arbitrary-precision arithmetic";
        spec.workload_id = 12;
        spec.threads = 1;
        spec.chains = {{"bc_multiply", 8, 0.1, false},
                       {"bc_divide", 8, 0.1, false}};
        spec.burst_prob = 0.02;
        spec.rare = RareRegionConfig{200, 20, 0.03};
    } else {
        ACT_FATAL("unknown prediction kernel: " << name);
    }
    if (spec.rare.emit_prob == 0.0) {
        // Every real program has input-dependent cold paths scattered
        // across its address space; a light rare-communication pool
        // anchors the network's learned structure over the whole code
        // range (and keeps Figure 7(b)'s extrapolation honest).
        spec.rare = RareRegionConfig{240, 24, 0.03};
    }
    return spec;
}

std::vector<std::string>
predictionKernelNames()
{
    std::vector<std::string> names;
    for (const auto &entry : kCatalog)
        names.emplace_back(entry.name);
    return names;
}

std::vector<std::string>
concurrentKernelNames()
{
    std::vector<std::string> names;
    for (const auto &entry : kCatalog) {
        if (entry.concurrent)
            names.emplace_back(entry.name);
    }
    return names;
}

void
registerPredictionKernels()
{
    auto &registry = WorkloadRegistry::instance();
    for (const auto &entry : kCatalog) {
        const std::string name = entry.name;
        if (registry.contains(name))
            continue;
        registry.add(name, [name]() {
            return std::make_unique<KernelWorkload>(kernelSpecFor(name));
        });
    }
}

} // namespace act
