/**
 * @file
 * Binary serialisation of execution traces.
 *
 * The on-disk format is a small fixed header followed by packed event
 * records; it lets benches cache expensive workload executions and
 * mirrors the role PIN trace files play in the paper's flow
 * (Figure 4(a)).
 */

#ifndef ACT_TRACE_IO_HH
#define ACT_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace act
{

/**
 * Write @p trace to @p path.
 *
 * @return true on success; false if the file could not be written.
 */
bool writeTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace previously produced by writeTrace().
 *
 * @param path  File to read.
 * @param trace Output trace (cleared first).
 * @return true on success; false on I/O error or format mismatch.
 */
bool readTrace(const std::string &path, Trace &trace);

} // namespace act

#endif // ACT_TRACE_IO_HH
