#include "trace/io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"

namespace act
{

namespace
{

/**
 * Decode/encode throughput counters, published once per file. Volatile:
 * how often traces hit disk depends on cache state, not the campaign.
 */
struct IoMetrics
{
    telemetry::Counter traces_read;
    telemetry::Counter events_read;
    telemetry::Counter traces_written;
    telemetry::Counter events_written;

    static const IoMetrics &
    get()
    {
        static const IoMetrics metrics = [] {
            auto &reg = telemetry::MetricsRegistry::global();
            const auto kVolatile = telemetry::Stability::kVolatile;
            IoMetrics m;
            m.traces_read = reg.counter("io.traces_read", kVolatile);
            m.events_read = reg.counter("io.events_read", kVolatile);
            m.traces_written =
                reg.counter("io.traces_written", kVolatile);
            m.events_written =
                reg.counter("io.events_written", kVolatile);
            return m;
        }();
        return metrics;
    }
};

constexpr char kMagic[8] = {'A', 'C', 'T', 'T', 'R', 'C', '0', '1'};

/** Packed on-disk event record. */
struct DiskEvent
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint32_t tid;
    std::uint32_t size;
    std::uint16_t gap;
    std::uint8_t kind;
    std::uint8_t flags; // bit0 = taken, bit1 = stack
};

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTrace(const Trace &trace, const std::string &path)
{
    telemetry::ScopedSpan span("trace.write", "io");
    span.annotate(telemetry::arg(
        "events", static_cast<std::uint64_t>(trace.size())));
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (!file)
        return false;
    if (std::fwrite(kMagic, sizeof(kMagic), 1, file.get()) != 1)
        return false;
    const std::uint64_t count = trace.size();
    if (std::fwrite(&count, sizeof(count), 1, file.get()) != 1)
        return false;
    // Pack and write in chunks: trace files back the campaign runner's
    // cache, where serialisation is on the reuse hot path.
    constexpr std::size_t kChunk = 4096;
    std::vector<DiskEvent> block;
    block.reserve(kChunk);
    for (const auto &event : trace.events()) {
        DiskEvent rec{};
        rec.pc = event.pc;
        rec.addr = event.addr;
        rec.tid = event.tid;
        rec.size = event.size;
        rec.gap = event.gap;
        rec.kind = static_cast<std::uint8_t>(event.kind);
        rec.flags = static_cast<std::uint8_t>((event.taken ? 1u : 0u) |
                                              (event.stack ? 2u : 0u));
        block.push_back(rec);
        if (block.size() == kChunk) {
            if (std::fwrite(block.data(), sizeof(DiskEvent), block.size(),
                            file.get()) != block.size()) {
                return false;
            }
            block.clear();
        }
    }
    if (!block.empty() &&
        std::fwrite(block.data(), sizeof(DiskEvent), block.size(),
                    file.get()) != block.size()) {
        return false;
    }
    if (std::fflush(file.get()) != 0)
        return false;
    const IoMetrics &m = IoMetrics::get();
    m.traces_written.inc();
    m.events_written.add(trace.size());
    return true;
}

bool
readTrace(const std::string &path, Trace &trace)
{
    trace.clear();
    telemetry::ScopedSpan span("trace.read", "io");
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return false;
    char magic[sizeof(kMagic)];
    if (std::fread(magic, sizeof(magic), 1, file.get()) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        return false;
    }
    std::uint64_t count = 0;
    if (std::fread(&count, sizeof(count), 1, file.get()) != 1)
        return false;

    // Validate the declared event count against the actual file size
    // before allocating or reading anything: a truncated or corrupted
    // file (e.g. a half-written cache entry) must fail cleanly instead
    // of driving a multi-gigabyte allocation or reading garbage.
    const long payload_start = std::ftell(file.get());
    if (payload_start < 0 || std::fseek(file.get(), 0, SEEK_END) != 0)
        return false;
    const long end = std::ftell(file.get());
    if (end < payload_start ||
        std::fseek(file.get(), payload_start, SEEK_SET) != 0) {
        return false;
    }
    const std::uint64_t payload =
        static_cast<std::uint64_t>(end - payload_start);
    if (count > payload / sizeof(DiskEvent))
        return false;

    // Decode block-wise: validate and unpack a whole disk chunk into a
    // scratch event batch, then land it with one bulk append instead of
    // per-event bookkeeping.
    constexpr std::size_t kChunk = 4096;
    const std::size_t block_cap =
        static_cast<std::size_t>(std::min<std::uint64_t>(count, kChunk));
    std::vector<DiskEvent> block(block_cap);
    std::vector<TraceEvent> decoded(block_cap);
    trace.reserve(static_cast<std::size_t>(count));
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, kChunk));
        if (std::fread(block.data(), sizeof(DiskEvent), n, file.get()) != n)
            return false;
        for (std::size_t i = 0; i < n; ++i) {
            if (block[i].kind >
                static_cast<std::uint8_t>(EventKind::kThreadExit)) {
                return false; // Corrupted record.
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            const DiskEvent &rec = block[i];
            TraceEvent &event = decoded[i];
            event.pc = rec.pc;
            event.addr = rec.addr;
            event.tid = rec.tid;
            event.size = rec.size;
            event.gap = rec.gap;
            event.kind = static_cast<EventKind>(rec.kind);
            event.taken = (rec.flags & 1u) != 0;
            event.stack = (rec.flags & 2u) != 0;
        }
        trace.appendBlock(std::span<const TraceEvent>(decoded.data(), n));
        remaining -= n;
    }
    const IoMetrics &m = IoMetrics::get();
    m.traces_read.inc();
    m.events_read.add(count);
    span.annotate(telemetry::arg("events", count));
    return true;
}

} // namespace act
