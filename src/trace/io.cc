#include "trace/io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

namespace act
{

namespace
{

constexpr char kMagic[8] = {'A', 'C', 'T', 'T', 'R', 'C', '0', '1'};

/** Packed on-disk event record. */
struct DiskEvent
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint32_t tid;
    std::uint32_t size;
    std::uint16_t gap;
    std::uint8_t kind;
    std::uint8_t flags; // bit0 = taken, bit1 = stack
};

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTrace(const Trace &trace, const std::string &path)
{
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (!file)
        return false;
    if (std::fwrite(kMagic, sizeof(kMagic), 1, file.get()) != 1)
        return false;
    const std::uint64_t count = trace.size();
    if (std::fwrite(&count, sizeof(count), 1, file.get()) != 1)
        return false;
    for (const auto &event : trace.events()) {
        DiskEvent rec{};
        rec.pc = event.pc;
        rec.addr = event.addr;
        rec.tid = event.tid;
        rec.size = event.size;
        rec.gap = event.gap;
        rec.kind = static_cast<std::uint8_t>(event.kind);
        rec.flags = static_cast<std::uint8_t>((event.taken ? 1u : 0u) |
                                              (event.stack ? 2u : 0u));
        if (std::fwrite(&rec, sizeof(rec), 1, file.get()) != 1)
            return false;
    }
    return true;
}

bool
readTrace(const std::string &path, Trace &trace)
{
    trace.clear();
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return false;
    char magic[sizeof(kMagic)];
    if (std::fread(magic, sizeof(magic), 1, file.get()) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        return false;
    }
    std::uint64_t count = 0;
    if (std::fread(&count, sizeof(count), 1, file.get()) != 1)
        return false;
    for (std::uint64_t i = 0; i < count; ++i) {
        DiskEvent rec{};
        if (std::fread(&rec, sizeof(rec), 1, file.get()) != 1)
            return false;
        TraceEvent event;
        event.pc = rec.pc;
        event.addr = rec.addr;
        event.tid = rec.tid;
        event.size = rec.size;
        event.gap = rec.gap;
        event.kind = static_cast<EventKind>(rec.kind);
        event.taken = (rec.flags & 1u) != 0;
        event.stack = (rec.flags & 2u) != 0;
        trace.append(event);
    }
    return true;
}

} // namespace act
