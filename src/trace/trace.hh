/**
 * @file
 * In-memory execution traces and the sink interface that fills them.
 */

#ifndef ACT_TRACE_TRACE_HH
#define ACT_TRACE_TRACE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "trace/event.hh"

namespace act
{

/**
 * Consumer of trace events.
 *
 * Workload models push events into a sink as they "execute"; sinks can
 * record them (Trace), stream them to the cycle simulator, or drop
 * them.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Deliver one event. The sink assigns the global sequence number. */
    virtual void append(TraceEvent event) = 0;
};

/** Sink that discards everything (for timing-only runs). */
class NullSink : public TraceSink
{
  public:
    void append(TraceEvent) override {}
};

/**
 * A recorded execution trace: the global interleaved event stream plus
 * summary counters.
 */
class Trace : public TraceSink
{
  public:
    void append(TraceEvent event) override;

    /**
     * Bulk append: copies @p events in one resize, assigning sequence
     * numbers and accumulating the summary counters locally before a
     * single write-back. Deserialisation hot path — readTrace decodes
     * whole disk blocks and lands them here instead of paying the
     * per-event append() bookkeeping.
     */
    void appendBlock(std::span<const TraceEvent> events);

    const std::vector<TraceEvent> &events() const { return events_; }
    std::vector<TraceEvent> &events() { return events_; }

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    const TraceEvent &operator[](std::size_t i) const { return events_[i]; }

    /** Pre-allocate for @p count events (deserialisation fast path). */
    void reserve(std::size_t count) { events_.reserve(count); }

    /** Total instructions: traced events plus their gap fillers. */
    std::uint64_t instructionCount() const { return instructions_; }

    std::uint64_t loadCount() const { return loads_; }
    std::uint64_t storeCount() const { return stores_; }
    std::uint64_t branchCount() const { return branches_; }

    /** Number of distinct thread ids that appear in the trace. */
    std::uint32_t threadCount() const;

    void clear();

  private:
    std::vector<TraceEvent> events_;
    std::uint64_t instructions_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t branches_ = 0;
};

/**
 * Forwarding sink that duplicates events into two downstream sinks.
 * Used when a run must be both recorded and simulated.
 */
class TeeSink : public TraceSink
{
  public:
    TeeSink(TraceSink &first, TraceSink &second)
        : first_(first), second_(second)
    {}

    void
    append(TraceEvent event) override
    {
        first_.append(event);
        second_.append(event);
    }

  private:
    TraceSink &first_;
    TraceSink &second_;
};

/**
 * True when ACT should ignore this load: Section V filters loads of
 * stack data (identified in hardware via ESP/EBP-relative addressing;
 * identified here via the event's stack flag).
 */
inline bool
isFilteredLoad(const TraceEvent &event)
{
    return event.kind == EventKind::kLoad && event.stack;
}

} // namespace act

#endif // ACT_TRACE_TRACE_HH
