/**
 * @file
 * Execution-trace event records.
 *
 * The paper collects traces with PIN (Section VI-A); this reproduction
 * replaces instrumented real binaries with deterministic workload
 * models that emit the same information: per-thread streams of memory
 * accesses (with static instruction addresses and data addresses),
 * branch outcomes (needed by the PBI baseline), synchronisation events
 * (needed by the Aviso baseline) and thread lifecycle markers.
 */

#ifndef ACT_TRACE_EVENT_HH
#define ACT_TRACE_EVENT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace act
{

/** Kind of a trace event. */
enum class EventKind : std::uint8_t
{
    kLoad,         //!< Memory read; addr/size describe the location.
    kStore,        //!< Memory write; addr/size describe the location.
    kBranch,       //!< Conditional branch; taken records the outcome.
    kLock,         //!< Lock acquire; addr identifies the lock.
    kUnlock,       //!< Lock release; addr identifies the lock.
    kThreadCreate, //!< Spawn; addr carries the child ThreadId.
    kThreadExit    //!< Thread termination.
};

/** Human-readable name of an event kind. */
const char *eventKindName(EventKind kind);

/**
 * One dynamic event in an execution trace.
 *
 * Workload models also report, via @ref gap, how many plain (non-traced)
 * instructions the thread executed since its previous event; the cycle
 * simulator uses this to reconstruct realistic instruction streams and
 * the benches use it to report rates "as a percentage of total
 * instructions" the way the paper does.
 */
struct TraceEvent
{
    SeqNum seq = 0;         //!< Global interleaving order.
    ThreadId tid = 0;       //!< Executing thread.
    EventKind kind = EventKind::kLoad;
    Pc pc = 0;              //!< Static instruction address.
    Addr addr = 0;          //!< Data address / lock id / child tid.
    std::uint32_t size = 4; //!< Access size in bytes.
    std::uint16_t gap = 0;  //!< Plain instructions preceding this event.
    bool taken = false;     //!< Branch outcome (kBranch only).
    bool stack = false;     //!< Stack access (ACT filters these loads).

    bool isMemory() const
    {
        return kind == EventKind::kLoad || kind == EventKind::kStore;
    }

    /** Render for debugging, e.g. "t1 L pc=0x42 a=0x100". */
    std::string toString() const;
};

} // namespace act

#endif // ACT_TRACE_EVENT_HH
