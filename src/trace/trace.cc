#include "trace/trace.hh"

#include <cstdio>
#include <set>

namespace act
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::kLoad: return "load";
      case EventKind::kStore: return "store";
      case EventKind::kBranch: return "branch";
      case EventKind::kLock: return "lock";
      case EventKind::kUnlock: return "unlock";
      case EventKind::kThreadCreate: return "create";
      case EventKind::kThreadExit: return "exit";
    }
    // Stable name for out-of-range kinds (e.g. from a corrupt trace
    // file) so diagnostics never print garbage.
    return "unknown";
}

std::string
TraceEvent::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "t%u %s pc=0x%llx addr=0x%llx gap=%u%s%s",
                  tid, eventKindName(kind),
                  static_cast<unsigned long long>(pc),
                  static_cast<unsigned long long>(addr), gap,
                  kind == EventKind::kBranch ? (taken ? " T" : " NT") : "",
                  stack ? " stack" : "");
    return buf;
}

void
Trace::append(TraceEvent event)
{
    event.seq = events_.size();
    instructions_ += 1 + event.gap;
    switch (event.kind) {
      case EventKind::kLoad:
        ++loads_;
        break;
      case EventKind::kStore:
        ++stores_;
        break;
      case EventKind::kBranch:
        ++branches_;
        break;
      default:
        break;
    }
    events_.push_back(event);
}

void
Trace::appendBlock(std::span<const TraceEvent> events)
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    const std::size_t base = events_.size();
    events_.resize(base + events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        TraceEvent &dst = events_[base + i];
        dst = events[i];
        dst.seq = base + i;
        instructions += 1 + dst.gap;
        switch (dst.kind) {
          case EventKind::kLoad:
            ++loads;
            break;
          case EventKind::kStore:
            ++stores;
            break;
          case EventKind::kBranch:
            ++branches;
            break;
          default:
            break;
        }
    }
    instructions_ += instructions;
    loads_ += loads;
    stores_ += stores;
    branches_ += branches;
}

std::uint32_t
Trace::threadCount() const
{
    std::set<ThreadId> tids;
    for (const auto &event : events_)
        tids.insert(event.tid);
    return static_cast<std::uint32_t>(tids.size());
}

void
Trace::clear()
{
    events_.clear();
    instructions_ = 0;
    loads_ = 0;
    stores_ = 0;
    branches_ = 0;
}

} // namespace act
