/**
 * @file
 * The two small SRAM buffers inside an ACT Module (Figure 4(b)):
 * the Input Generator Buffer holding recent RAW dependences, and the
 * Debug Buffer logging recently flagged (predicted-invalid) sequences.
 *
 * Both are fixed-capacity rings over storage preallocated at
 * construction — the hardware they model is SRAM, and the simulator's
 * hot loop pushes one dependence per tracked load, so neither may
 * allocate after construction.
 */

#ifndef ACT_ACT_BUFFERS_HH
#define ACT_ACT_BUFFERS_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "deps/raw_dependence.hh"

namespace act
{

/**
 * Table III buffer sizes. These are the single source of truth:
 * ActConfig's defaults are defined in terms of them, and
 * validateActConfig() warns when a configuration diverges.
 */
inline constexpr std::size_t kInputGeneratorBufferEntries = 50;
inline constexpr std::size_t kDebugBufferEntries = 60;

/**
 * FIFO of the most recent RAW dependences observed by this core
 * (Table III: 50 entries). The newest N entries form the neural
 * network's input sequence.
 */
class InputGeneratorBuffer
{
  public:
    explicit InputGeneratorBuffer(std::size_t capacity);

    /**
     * Insert a dependence; the oldest entry drops when full.
     *
     * @return true when the ring was saturated and the oldest entry was
     *         overwritten (the hardware loses that dependence).
     */
    bool
    push(const RawDependence &dep)
    {
        if (size_ == capacity_) {
            slots_[head_] = dep;
            head_ = next(head_);
            ++overwrites_;
            return true;
        }
        slots_[wrap(head_ + size_)] = dep;
        ++size_;
        return false;
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }

    /** Lifetime count of oldest-entry overwrites under saturation. */
    std::uint64_t overwrites() const { return overwrites_; }

    /**
     * The most recent @p n dependences, oldest first; nullopt when
     * fewer than @p n are buffered.
     */
    std::optional<DependenceSequence> lastSequence(std::size_t n) const;

    /**
     * Non-allocating variant: fill @p out with the most recent @p n
     * dependences, oldest first (reusing its storage). Returns false —
     * leaving @p out untouched — when fewer than @p n are buffered.
     */
    bool lastSequence(std::size_t n, DependenceSequence &out) const;

    /**
     * Full reset, including the overwrite counter: a cleared buffer is
     * indistinguishable from a freshly constructed one.
     */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
        overwrites_ = 0;
    }

  private:
    std::size_t next(std::size_t i) const { return wrap(i + 1); }
    std::size_t wrap(std::size_t i) const
    {
        return i >= capacity_ ? i - capacity_ : i;
    }

    std::size_t capacity_;
    std::vector<RawDependence> slots_; //!< Preallocated ring storage.
    std::size_t head_ = 0;             //!< Index of the oldest entry.
    std::size_t size_ = 0;
    std::uint64_t overwrites_ = 0;     //!< Entries lost to saturation.
};

/** One Debug Buffer record. */
struct DebugEntry
{
    DependenceSequence sequence;
    double output = 0.0;    //!< Raw NN output (< 0 = predicted invalid).
    SeqNum when = 0;        //!< Prediction index at logging time.
    ThreadId tid = 0;       //!< Thread whose load formed the sequence.
};

/**
 * Ring of the most recently flagged sequences (Table III: 60).
 */
class DebugBuffer
{
  public:
    explicit DebugBuffer(std::size_t capacity);

    /**
     * Log a flagged sequence; the oldest entry drops when full.
     *
     * @return true when the ring was saturated and the oldest entry was
     *         overwritten (that flagged sequence is lost to postmortem).
     */
    bool log(DebugEntry entry);

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }

    /** Lifetime count of oldest-entry overwrites under saturation. */
    std::uint64_t overwrites() const { return overwrites_; }

    /** Entries, oldest first (materialised from the ring). */
    std::vector<DebugEntry> entries() const;

    /** Total entries ever logged (including overwritten ones). */
    std::uint64_t totalLogged() const { return total_logged_; }

    /**
     * Distance from the newest entry (0 = newest) of the most recent
     * entry whose final dependence equals @p dep; nullopt if absent.
     */
    std::optional<std::size_t> positionOf(const RawDependence &dep) const;

    /**
     * Full reset: drops the buffered entries *and* the lifetime
     * totalLogged() counter, so a cleared buffer is indistinguishable
     * from a freshly constructed one (reuse across campaign jobs
     * depends on this).
     */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
        total_logged_ = 0;
        overwrites_ = 0;
    }

  private:
    std::size_t wrap(std::size_t i) const
    {
        return i >= capacity_ ? i - capacity_ : i;
    }

    std::size_t capacity_;
    std::vector<DebugEntry> slots_; //!< Preallocated ring storage.
    std::size_t head_ = 0;          //!< Index of the oldest entry.
    std::size_t size_ = 0;
    std::uint64_t total_logged_ = 0;
    std::uint64_t overwrites_ = 0;  //!< Entries lost to saturation.
};

} // namespace act

#endif // ACT_ACT_BUFFERS_HH
