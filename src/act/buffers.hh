/**
 * @file
 * The two small SRAM buffers inside an ACT Module (Figure 4(b)):
 * the Input Generator Buffer holding recent RAW dependences, and the
 * Debug Buffer logging recently flagged (predicted-invalid) sequences.
 */

#ifndef ACT_ACT_BUFFERS_HH
#define ACT_ACT_BUFFERS_HH

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "deps/raw_dependence.hh"

namespace act
{

/**
 * FIFO of the most recent RAW dependences observed by this core
 * (Table III: 50 entries). The newest N entries form the neural
 * network's input sequence.
 */
class InputGeneratorBuffer
{
  public:
    explicit InputGeneratorBuffer(std::size_t capacity);

    /** Insert a dependence; the oldest entry drops when full. */
    void push(const RawDependence &dep);

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * The most recent @p n dependences, oldest first; nullopt when
     * fewer than @p n are buffered.
     */
    std::optional<DependenceSequence> lastSequence(std::size_t n) const;

    void clear() { entries_.clear(); }

  private:
    std::size_t capacity_;
    std::deque<RawDependence> entries_;
};

/** One Debug Buffer record. */
struct DebugEntry
{
    DependenceSequence sequence;
    double output = 0.0;    //!< Raw NN output (< 0 = predicted invalid).
    SeqNum when = 0;        //!< Prediction index at logging time.
    ThreadId tid = 0;       //!< Thread whose load formed the sequence.
};

/**
 * Ring of the most recently flagged sequences (Table III: 60).
 */
class DebugBuffer
{
  public:
    explicit DebugBuffer(std::size_t capacity);

    /** Log a flagged sequence; the oldest entry drops when full. */
    void log(DebugEntry entry);

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Entries, oldest first. */
    const std::deque<DebugEntry> &entries() const { return entries_; }

    /** Total entries ever logged (including overwritten ones). */
    std::uint64_t totalLogged() const { return total_logged_; }

    /**
     * Distance from the newest entry (0 = newest) of the most recent
     * entry whose final dependence equals @p dep; nullopt if absent.
     */
    std::optional<std::size_t> positionOf(const RawDependence &dep) const;

    /**
     * Full reset: drops the buffered entries *and* the lifetime
     * totalLogged() counter, so a cleared buffer is indistinguishable
     * from a freshly constructed one (reuse across campaign jobs
     * depends on this).
     */
    void
    clear()
    {
        entries_.clear();
        total_logged_ = 0;
    }

  private:
    std::size_t capacity_;
    std::deque<DebugEntry> entries_;
    std::uint64_t total_logged_ = 0;
};

} // namespace act

#endif // ACT_ACT_BUFFERS_HH
