#include "act/buffers.hh"

#include "common/logging.hh"

namespace act
{

InputGeneratorBuffer::InputGeneratorBuffer(std::size_t capacity)
    : capacity_(capacity)
{
    ACT_ASSERT(capacity_ >= 1);
}

void
InputGeneratorBuffer::push(const RawDependence &dep)
{
    if (entries_.size() == capacity_)
        entries_.pop_front();
    entries_.push_back(dep);
}

std::optional<DependenceSequence>
InputGeneratorBuffer::lastSequence(std::size_t n) const
{
    if (entries_.size() < n)
        return std::nullopt;
    DependenceSequence seq;
    seq.deps.assign(entries_.end() - static_cast<long>(n), entries_.end());
    return seq;
}

DebugBuffer::DebugBuffer(std::size_t capacity)
    : capacity_(capacity)
{
    ACT_ASSERT(capacity_ >= 1);
}

void
DebugBuffer::log(DebugEntry entry)
{
    if (entries_.size() == capacity_)
        entries_.pop_front();
    entries_.push_back(std::move(entry));
    ++total_logged_;
}

std::optional<std::size_t>
DebugBuffer::positionOf(const RawDependence &dep) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const auto &entry = entries_[entries_.size() - 1 - i];
        if (!entry.sequence.deps.empty() &&
            entry.sequence.deps.back() == dep) {
            return i;
        }
    }
    return std::nullopt;
}

} // namespace act
