#include "act/buffers.hh"

#include "act/act_config.hh"
#include "common/logging.hh"

namespace act
{

// The Table III constants above are the single source for the
// ActConfig defaults; a divergence here means someone re-hardcoded one
// of them.
static_assert(ActConfig{}.input_buffer_entries ==
                  kInputGeneratorBufferEntries,
              "ActConfig default must come from kInputGeneratorBufferEntries");
static_assert(ActConfig{}.debug_buffer_entries == kDebugBufferEntries,
              "ActConfig default must come from kDebugBufferEntries");

InputGeneratorBuffer::InputGeneratorBuffer(std::size_t capacity)
    : capacity_(capacity), slots_(capacity)
{
    ACT_ASSERT(capacity_ >= 1);
}

std::optional<DependenceSequence>
InputGeneratorBuffer::lastSequence(std::size_t n) const
{
    DependenceSequence seq;
    if (!lastSequence(n, seq))
        return std::nullopt;
    return seq;
}

bool
InputGeneratorBuffer::lastSequence(std::size_t n,
                                   DependenceSequence &out) const
{
    if (size_ < n)
        return false;
    out.deps.resize(n);
    std::size_t i = wrap(head_ + (size_ - n));
    for (std::size_t k = 0; k < n; ++k) {
        out.deps[k] = slots_[i];
        i = next(i);
    }
    return true;
}

DebugBuffer::DebugBuffer(std::size_t capacity)
    : capacity_(capacity), slots_(capacity)
{
    ACT_ASSERT(capacity_ >= 1);
}

bool
DebugBuffer::log(DebugEntry entry)
{
    bool overwrote = false;
    if (size_ == capacity_) {
        slots_[head_] = std::move(entry);
        head_ = wrap(head_ + 1);
        ++overwrites_;
        overwrote = true;
    } else {
        slots_[wrap(head_ + size_)] = std::move(entry);
        ++size_;
    }
    ++total_logged_;
    return overwrote;
}

std::vector<DebugEntry>
DebugBuffer::entries() const
{
    std::vector<DebugEntry> out;
    out.reserve(size_);
    for (std::size_t k = 0; k < size_; ++k)
        out.push_back(slots_[wrap(head_ + k)]);
    return out;
}

std::optional<std::size_t>
DebugBuffer::positionOf(const RawDependence &dep) const
{
    for (std::size_t i = 0; i < size_; ++i) {
        const auto &entry = slots_[wrap(head_ + (size_ - 1 - i))];
        if (!entry.sequence.deps.empty() &&
            entry.sequence.deps.back() == dep) {
            return i;
        }
    }
    return std::nullopt;
}

} // namespace act
