/**
 * @file
 * Configuration of the per-core ACT Module (Table III defaults).
 */

#ifndef ACT_ACT_ACT_CONFIG_HH
#define ACT_ACT_ACT_CONFIG_HH

#include <cstdint>

#include "act/buffers.hh"
#include "common/fault_hooks.hh"
#include "hwnn/pipeline.hh"
#include "nn/network.hh"

namespace act
{

/** All knobs of one ACT Module. */
struct ActConfig
{
    /** Dependences per neural-network input sequence (N). */
    std::size_t sequence_length = 3;

    /** Input Generator Buffer entries (Table III: 50). */
    std::size_t input_buffer_entries = kInputGeneratorBufferEntries;

    /** Debug Buffer entries (Table III: 60). */
    std::size_t debug_buffer_entries = kDebugBufferEntries;

    /** Misprediction-rate threshold driving mode switches (5%). */
    double misprediction_threshold = 0.05;

    /** Predictions per misprediction-rate measurement interval. */
    std::uint64_t interval_length = 2000;

    /** On-line back-propagation learning rate. */
    double learning_rate = 0.2;

    /** Hardware network parameters (pipeline + neuron). */
    HwNetworkConfig hw;

    /** Logical topology (inputs must equal sequence_length x encoder
     *  width; checked at module construction). */
    Topology topology{6, 10};

    /**
     * Fault-injection decision points (resilience experiments only).
     * Null — the default — means no faults; the hot path then costs
     * one never-taken branch per site. Non-owning: the campaign job
     * that wires an injector keeps it alive for the run.
     */
    FaultHooks *faults = nullptr;
};

/**
 * Cost model of the ISA extension (Table II).
 *
 * chkwt/ldwt/stwt are simple register-file accesses: one instruction
 * each. Loading or storing a full weight set runs a loop of one
 * ldwt/stwt plus one ordinary load/store per weight register.
 */
struct IsaCostModel
{
    /** Instructions to check a thread's weights (chkwt). */
    static constexpr std::uint32_t kCheckInstructions = 1;

    /** Instructions to transfer one weight (ldwt/stwt + memory op). */
    static constexpr std::uint32_t kPerWeightInstructions = 2;

    /** Instructions to load/store a whole weight set. */
    static std::uint32_t
    weightTransferInstructions(std::size_t weight_count)
    {
        return kCheckInstructions +
               kPerWeightInstructions *
                   static_cast<std::uint32_t>(weight_count);
    }
};

} // namespace act

#endif // ACT_ACT_ACT_CONFIG_HH
