/**
 * @file
 * Configuration of the per-core ACT Module (Table III defaults).
 */

#ifndef ACT_ACT_ACT_CONFIG_HH
#define ACT_ACT_ACT_CONFIG_HH

#include <cstdint>
#include <vector>

#include "act/buffers.hh"
#include "common/fault_hooks.hh"
#include "hwnn/pipeline.hh"
#include "nn/network.hh"

namespace act
{

/**
 * Per-thread ensemble of member networks (Adaptivity 2.0).
 *
 * members = 1 — the default — is the paper's single-MLP module and is
 * bit-identical to the pre-ensemble code path. With K > 1 members the
 * module holds K independent weight sets over the same topology and a
 * dependence is logged as suspect only when at least `quorum` members
 * predict invalid; per-member disagreement feeds the arena's health
 * score. The hardware budget still applies: the K members share the
 * M-neuron bank, so members x hidden must fit within hw.neuron
 * fan-in (checked by validateActConfig).
 */
struct EnsembleConfig
{
    /** Member networks (K). 1 = dormant single-network module. */
    std::size_t members = 1;

    /** Invalid votes needed to flag a sequence; 0 = majority. */
    std::size_t quorum = 0;

    /** EWMA factor of the per-prediction agreement health score. */
    double health_beta = 0.05;

    /** Effective quorum for @p members voters. */
    std::size_t
    effectiveQuorum(std::size_t voters) const
    {
        if (quorum > 0 && quorum <= voters)
            return quorum;
        return voters / 2 + 1;
    }
};

/**
 * The mode-switch policy. The default (self_tuning = false) is the
 * paper's raw latch: one misprediction-rate sample per interval
 * compared against the single 5% threshold — bit-identical to the
 * historical onDependence behaviour. Self-tuning mode replaces the
 * latch with EWMA tracking plus hysteresis (separate enter/exit
 * thresholds) and a minimum-dwell interval count to kill
 * mode-flapping, and can grow/shrink the hidden layer against the
 * hardware budget when the EWMA stays poor (dynamic_topology).
 */
struct ModeControllerConfig
{
    bool self_tuning = false;

    /** EWMA smoothing factor in (0, 1]; 1 = raw interval rate. */
    double ewma_alpha = 0.3;

    /** EWMA above this enters training mode. */
    double enter_training = 0.08;

    /** EWMA at or below this returns to testing (must be <= enter). */
    double exit_training = 0.03;

    /** Completed intervals a mode must dwell before switching again. */
    std::uint64_t min_dwell_intervals = 3;

    // --- Dynamic topology selection -------------------------------
    bool dynamic_topology = false;

    /** Poor-EWMA training intervals before growing the hidden layer. */
    std::uint64_t grow_patience = 4;

    /** Calm-EWMA testing intervals before shrinking it. */
    std::uint64_t shrink_patience = 16;

    /** EWMA below this counts as calm (shrink candidate). */
    double shrink_below = 0.005;

    /** Hidden-layer floor the controller never shrinks past. */
    std::size_t min_hidden = 4;
};

/**
 * Selective weight protection consulted when a thread's stored weight
 * set is loaded: implementations verify a checksum and repair the set
 * from a shadow copy when a fault flipped a stored bit. Dormant via
 * the same null-pointer contract as FaultHooks — the concrete guard
 * (faults/weight_guard) ranks sets by probed fault sensitivity and
 * only shadows the most sensitive ones.
 */
class WeightProtector
{
  public:
    virtual ~WeightProtector() = default;

    /**
     * Inspect the weight set @p set_id (member << 32 | tid) about to
     * be loaded. @return true when a corruption was detected and
     * @p weights was repaired in place from the shadow copy.
     */
    virtual bool inspect(std::uint64_t set_id,
                         std::vector<double> &weights) const = 0;
};

/** All knobs of one ACT Module. */
struct ActConfig
{
    /** Dependences per neural-network input sequence (N). */
    std::size_t sequence_length = 3;

    /** Input Generator Buffer entries (Table III: 50). */
    std::size_t input_buffer_entries = kInputGeneratorBufferEntries;

    /** Debug Buffer entries (Table III: 60). */
    std::size_t debug_buffer_entries = kDebugBufferEntries;

    /** Misprediction-rate threshold driving mode switches (5%). */
    double misprediction_threshold = 0.05;

    /** Predictions per misprediction-rate measurement interval. */
    std::uint64_t interval_length = 2000;

    /** On-line back-propagation learning rate. */
    double learning_rate = 0.2;

    /** Hardware network parameters (pipeline + neuron). */
    HwNetworkConfig hw;

    /** Logical topology (inputs must equal sequence_length x encoder
     *  width; checked at module construction). */
    Topology topology{6, 10};

    /** Per-thread ensemble parameters (members = 1 is dormant). */
    EnsembleConfig ensemble;

    /** Mode-switch policy (legacy latch by default). */
    ModeControllerConfig controller;

    /**
     * Fault-injection decision points (resilience experiments only).
     * Null — the default — means no faults; the hot path then costs
     * one never-taken branch per site. Non-owning: the campaign job
     * that wires an injector keeps it alive for the run.
     */
    FaultHooks *faults = nullptr;

    /**
     * Selective weight protection consulted at initThread. Null — the
     * default — skips the check entirely (one never-taken branch per
     * thread start). Non-owning, same lifetime contract as `faults`.
     */
    const WeightProtector *protector = nullptr;
};

/**
 * Cost model of the ISA extension (Table II).
 *
 * chkwt/ldwt/stwt are simple register-file accesses: one instruction
 * each. Loading or storing a full weight set runs a loop of one
 * ldwt/stwt plus one ordinary load/store per weight register.
 */
struct IsaCostModel
{
    /** Instructions to check a thread's weights (chkwt). */
    static constexpr std::uint32_t kCheckInstructions = 1;

    /** Instructions to transfer one weight (ldwt/stwt + memory op). */
    static constexpr std::uint32_t kPerWeightInstructions = 2;

    /** Instructions to load/store a whole weight set. */
    static std::uint32_t
    weightTransferInstructions(std::size_t weight_count)
    {
        return kCheckInstructions +
               kPerWeightInstructions *
                   static_cast<std::uint32_t>(weight_count);
    }
};

} // namespace act

#endif // ACT_ACT_ACT_CONFIG_HH
