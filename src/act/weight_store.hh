/**
 * @file
 * Per-thread weight persistence — the "weights stored in the program
 * binary" of Sections III-B and IV-C.
 *
 * After offline training (and again at every thread exit, when the
 * thread library reads the registers back with ldwt), each thread's
 * link weights are recorded against its deterministic thread id. At
 * thread creation the library checks for stored weights with chkwt and
 * initialises the AM with stwt; a thread with no stored weights gets
 * default weights, which mispredict badly and push the module straight
 * into online-training mode.
 */

#ifndef ACT_ACT_WEIGHT_STORE_HH
#define ACT_ACT_WEIGHT_STORE_HH

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "nn/network.hh"

namespace act
{

/**
 * Identifier of one stored weight set: ensemble member @p member of
 * thread @p tid. Member 0 ids are plain thread ids, so files written
 * before the ensemble extension load unchanged and files without
 * ensemble entries are byte-identical to the pre-ensemble format.
 */
inline constexpr std::uint64_t
weightSetId(ThreadId tid, std::size_t member)
{
    return (static_cast<std::uint64_t>(member) << 32) |
           static_cast<std::uint64_t>(tid);
}

/** The binary-resident weight table. */
class WeightStore
{
  public:
    WeightStore() = default;

    /** @param topology Topology every stored weight set must match. */
    explicit WeightStore(Topology topology) : topology_(topology) {}

    const Topology &topology() const { return topology_; }

    /** chkwt: does thread @p tid have stored weights? */
    bool has(ThreadId tid) const { return weights_.count(tid) != 0; }

    /** Weights for @p tid, or nullopt (thread library falls back). */
    std::optional<std::vector<double>> get(ThreadId tid) const;

    /** Record @p weights for @p tid ("patching the binary"). */
    void set(ThreadId tid, std::vector<double> weights);

    /** Store the same weights for threads [0, count). */
    void setAll(std::uint32_t count, const std::vector<double> &weights);

    // --- Ensemble members -----------------------------------------

    /** Weights of ensemble member @p member for @p tid (member 0 is
     *  the plain per-thread set). */
    std::optional<std::vector<double>> getMember(ThreadId tid,
                                                 std::size_t member) const;

    /** Record member @p member's weights for @p tid. */
    void setMember(ThreadId tid, std::size_t member,
                   std::vector<double> weights);

    /** Does member @p member of @p tid have stored weights? */
    bool hasMember(ThreadId tid, std::size_t member) const;

    /** Stored members for @p tid: 1 + the contiguous extras present. */
    std::size_t memberCountFor(ThreadId tid) const;

    /** Extra (member >= 1) weight-set ids, sorted, for audits. */
    std::vector<std::uint64_t> memberIds() const;

    /** Number of threads with stored weights. */
    std::size_t size() const { return weights_.size(); }

    /** Thread ids with stored weights, sorted (for iteration/audits). */
    std::vector<ThreadId> tids() const;

    /** Number of weight registers per thread for the topology. */
    std::size_t weightCount() const;

    /** Serialise to a file; returns false on I/O failure. */
    bool save(const std::string &path) const;

    /** Load from a file written by save(). */
    bool load(const std::string &path);

  private:
    Topology topology_{6, 10};
    std::unordered_map<ThreadId, std::vector<double>> weights_;

    /** Ensemble extras keyed by weightSetId (member >= 1 only). */
    std::unordered_map<std::uint64_t, std::vector<double>> members_;
};

} // namespace act

#endif // ACT_ACT_WEIGHT_STORE_HH
