/**
 * @file
 * Per-thread weight persistence — the "weights stored in the program
 * binary" of Sections III-B and IV-C.
 *
 * After offline training (and again at every thread exit, when the
 * thread library reads the registers back with ldwt), each thread's
 * link weights are recorded against its deterministic thread id. At
 * thread creation the library checks for stored weights with chkwt and
 * initialises the AM with stwt; a thread with no stored weights gets
 * default weights, which mispredict badly and push the module straight
 * into online-training mode.
 */

#ifndef ACT_ACT_WEIGHT_STORE_HH
#define ACT_ACT_WEIGHT_STORE_HH

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "nn/network.hh"

namespace act
{

/** The binary-resident weight table. */
class WeightStore
{
  public:
    WeightStore() = default;

    /** @param topology Topology every stored weight set must match. */
    explicit WeightStore(Topology topology) : topology_(topology) {}

    const Topology &topology() const { return topology_; }

    /** chkwt: does thread @p tid have stored weights? */
    bool has(ThreadId tid) const { return weights_.count(tid) != 0; }

    /** Weights for @p tid, or nullopt (thread library falls back). */
    std::optional<std::vector<double>> get(ThreadId tid) const;

    /** Record @p weights for @p tid ("patching the binary"). */
    void set(ThreadId tid, std::vector<double> weights);

    /** Store the same weights for threads [0, count). */
    void setAll(std::uint32_t count, const std::vector<double> &weights);

    /** Number of threads with stored weights. */
    std::size_t size() const { return weights_.size(); }

    /** Thread ids with stored weights, sorted (for iteration/audits). */
    std::vector<ThreadId> tids() const;

    /** Number of weight registers per thread for the topology. */
    std::size_t weightCount() const;

    /** Serialise to a file; returns false on I/O failure. */
    bool save(const std::string &path) const;

    /** Load from a file written by save(). */
    bool load(const std::string &path);

  private:
    Topology topology_{6, 10};
    std::unordered_map<ThreadId, std::vector<double>> weights_;
};

} // namespace act

#endif // ACT_ACT_WEIGHT_STORE_HH
