#include "act/act_module.hh"

#include "analysis/config_check.hh"
#include "common/logging.hh"
#include "telemetry/spans.hh"

namespace act
{

namespace
{

/**
 * Gate construction on the full configuration contract. Runs before
 * any member is built (the hardware network asserts on bad topologies)
 * and reports every violation, naming the offending knob and value,
 * instead of tripping a bare assert on the first one.
 */
const ActConfig &
checkedConfig(const ActConfig &config, const DependenceEncoder &encoder)
{
    const auto findings = validateActConfig(config, encoder.width());
    if (!clean(findings))
        ACT_FATAL("invalid ActConfig:\n" << formatFindings(findings));
    return config;
}

} // namespace

ActModule::ActModule(const ActConfig &config,
                     const DependenceEncoder &encoder)
    : config_(checkedConfig(config, encoder)), encoder_(encoder.clone()),
      network_(config.hw, config.topology), own_arena_(config_),
      arena_(&own_arena_)
{}

bool
ActModule::weightsUsable(const std::vector<double> &weights) const
{
    // loadWeights() quantises through an int32 cast, so NaN/Inf or
    // out-of-range values (e.g. from an injected bit flip in the
    // store) would be undefined behaviour — they must be rejected
    // before they reach the network.
    return clean(validateWeights(config_.topology, weights));
}

std::size_t
ActModule::initThread(ThreadId tid, const WeightStore &store)
{
    const auto weights = store.get(tid);
    const bool usable = weights && weightsUsable(*weights);
    if (weights && !usable) {
        // Degradation, not death: a corrupt stored set is quarantined
        // and the module retrains from scratch, exactly as if the
        // store had no entry for the thread.
        ++arena_->stats.quarantined_weight_sets;
        telemetry::SpanTracer::global().instant(
            "weight_quarantine", "act",
            {telemetry::arg("tid", std::uint64_t{tid})});
        logWarnEvent("act.weight_quarantine",
                     {logField("tid", std::uint64_t{tid}),
                      logField("where", "init")});
    }
    if (usable) {
        network_.loadWeights(*weights);
        arena_->mode = ActMode::kTesting;
    } else {
        // Default weights: the all-zero network outputs 0.5 for every
        // input, classifying everything as (barely) valid until the
        // first measured interval drives the module into training.
        std::vector<double> zeros(network_.weightCount(), 0.0);
        network_.loadWeights(zeros);
        switchMode(ActMode::kTraining);
    }
    arena_->input.clear();
    arena_->rate.resetInterval();
    return network_.weightCount();
}

std::vector<double>
ActModule::saveWeights() const
{
    return network_.storeWeights();
}

void
ActModule::restoreWeights(const std::vector<double> &weights)
{
    if (weightsUsable(weights)) {
        network_.loadWeights(weights);
    } else {
        ++arena_->stats.quarantined_weight_sets;
        telemetry::SpanTracer::global().instant("weight_quarantine",
                                                "act", {});
        logWarnEvent("act.weight_quarantine",
                     {logField("where", "restore")});
        std::vector<double> zeros(network_.weightCount(), 0.0);
        network_.loadWeights(zeros);
        switchMode(ActMode::kTraining);
    }
    arena_->input.clear();
}

void
ActModule::flushPipeline()
{
    network_.flush();
}

void
ActModule::switchMode(ActMode next)
{
    if (arena_->mode == next)
        return;
    arena_->mode = next;
    ++arena_->stats.mode_switches;
    // Mode flips happen at most once per misprediction-rate interval,
    // so an instant event here cannot perturb the per-event hot loop.
    telemetry::SpanTracer::global().instant(
        "mode_switch", "act",
        {telemetry::arg("to", next == ActMode::kTraining ? "training"
                                                         : "testing")});
    arena_->rate.resetInterval();
}

ActOutcome
ActModule::onDependence(const RawDependence &dep, ThreadId tid,
                        Cycle cycle)
{
    ActOutcome outcome;
    ActArena &arena = *arena_;
    ++arena.stats.dependences;
    if (arena.mode == ActMode::kTraining)
        ++arena.stats.training_dependences;

    if (config_.faults && config_.faults->dropInputDependence()) {
        // Injected Input Generator fault: the dependence never reaches
        // the buffer, as if the hardware write port glitched.
        ++arena.stats.input_drops_injected;
        return outcome;
    }
    if (arena.input.push(dep))
        ++arena.stats.input_buffer_overwrites;
    if (!arena.input.lastSequence(config_.sequence_length,
                                  arena.seq_scratch))
        return outcome;
    const DependenceSequence &sequence = arena.seq_scratch;

    // Timing: the load retires only once the input FIFO accepts the
    // sequence. A full FIFO stalls it (Section III-C / IV-A).
    const bool training = arena.mode == ActMode::kTraining;
    Cycle now = cycle;
    for (;;) {
        const AcceptResult accepted = network_.offer(now, training);
        if (accepted.accepted)
            break;
        ++arena.stats.stalled_offers;
        ACT_ASSERT(accepted.retry_at > now);
        outcome.stall_cycles += accepted.retry_at - now;
        arena.stats.stall_cycles += accepted.retry_at - now;
        now = accepted.retry_at;
    }

    // Function: classify the sequence (and learn from it in training
    // mode).
    encoder_->encodeSequenceInto(sequence, arena.input_scratch);
    const std::vector<double> &inputs = arena.input_scratch;
    outcome.classified = true;
    ++arena.stats.predictions;

    double output = 0.0;
    double raw = 0.0;
    if (training) {
        // All dependences are presumed valid; the network learns the
        // ones it would have rejected.
        output = network_.infer(inputs);
        if (output < 0.5) {
            network_.train(inputs, 1.0, config_.learning_rate);
            ++arena.stats.train_updates;
        }
    } else {
        output = network_.inferWithRaw(inputs, raw);
    }
    outcome.output = output;
    outcome.predicted_invalid = output < 0.5;

    if (outcome.predicted_invalid) {
        ++arena.stats.predicted_invalid;
        // The Debug Buffer records the raw accumulator value: the
        // ranking tie-break wants "the most negative output", which
        // the saturated sigmoid cannot resolve. In training mode the
        // weights just moved, so the raw value is re-read from the
        // updated network (matching what the hardware would log after
        // the back-propagation pass); in testing mode the forward pass
        // already produced it.
        if (config_.faults && config_.faults->dropDebugLog()) {
            // Injected Debug Buffer fault: the flagged sequence is
            // silently lost before it can be logged.
            ++arena.stats.debug_drops_injected;
        } else if (arena.debug.log(
                       DebugEntry{sequence,
                                  training ? network_.rawOutput(inputs)
                                           : raw,
                                  arena.stats.predictions, tid})) {
            ++arena.stats.debug_buffer_overwrites;
        }
    }

    // Periodic misprediction-rate check drives the mode switches. A
    // prediction of "invalid" that the execution survives counts as a
    // misprediction (Section III-C).
    if (arena.rate.record(outcome.predicted_invalid)) {
        if (arena.mode == ActMode::kTesting &&
            arena.rate.lastRate() > config_.misprediction_threshold) {
            switchMode(ActMode::kTraining);
        } else if (arena.mode == ActMode::kTraining &&
                   arena.rate.lastRate() <=
                       config_.misprediction_threshold) {
            switchMode(ActMode::kTesting);
        }
    }
    return outcome;
}

bool
ActModule::stageDependence(const RawDependence &dep)
{
    ActArena &arena = *arena_;
    // The split-phase path has no training half: commits never touch
    // the weight registers, which is what lets many arenas share one
    // engine. Callers keep the module in testing mode by construction
    // (the fleet pins the rate interval unreachably long).
    ACT_ASSERT(arena.mode == ActMode::kTesting);
    ++arena.stats.dependences;

    if (config_.faults && config_.faults->dropInputDependence()) {
        ++arena.stats.input_drops_injected;
        return false;
    }
    if (arena.input.push(dep))
        ++arena.stats.input_buffer_overwrites;
    if (!arena.input.lastSequence(config_.sequence_length,
                                  arena.seq_scratch))
        return false;
    encoder_->encodeSequenceInto(arena.seq_scratch, arena.input_scratch);
    return true;
}

StagedOutcome
ActModule::commitPrediction(const DependenceSequence &sequence,
                            std::span<const double> inputs, double output,
                            ThreadId tid)
{
    ActArena &arena = *arena_;
    ACT_ASSERT(arena.mode == ActMode::kTesting);
    StagedOutcome outcome;
    ++arena.stats.predictions;
    outcome.predicted_invalid = output < 0.5;

    if (outcome.predicted_invalid) {
        ++arena.stats.predicted_invalid;
        // Flagged sequences are rare (the whole premise of the Debug
        // Buffer), so the raw accumulator re-read — a pure forward
        // pass over the same weights the batch inference used — stays
        // off the common path.
        outcome.raw = network_.rawOutput(inputs);
        if (config_.faults && config_.faults->dropDebugLog()) {
            ++arena.stats.debug_drops_injected;
        } else if (arena.debug.log(DebugEntry{sequence, outcome.raw,
                                              arena.stats.predictions,
                                              tid})) {
            ++arena.stats.debug_buffer_overwrites;
        }
    }

    if (arena.rate.record(outcome.predicted_invalid)) {
        if (arena.mode == ActMode::kTesting &&
            arena.rate.lastRate() > config_.misprediction_threshold) {
            switchMode(ActMode::kTraining);
        } else if (arena.mode == ActMode::kTraining &&
                   arena.rate.lastRate() <=
                       config_.misprediction_threshold) {
            switchMode(ActMode::kTesting);
        }
    }
    return outcome;
}

} // namespace act
