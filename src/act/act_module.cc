#include "act/act_module.hh"

#include "analysis/config_check.hh"
#include "common/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"

namespace act
{

namespace
{

/** Quarantines of one tid before the store is distrusted for it. */
constexpr std::uint32_t kQuarantineEscalationThreshold = 2;

/**
 * Gate construction on the full configuration contract. Runs before
 * any member is built (the hardware network asserts on bad topologies)
 * and reports every violation, naming the offending knob and value,
 * instead of tripping a bare assert on the first one.
 */
const ActConfig &
checkedConfig(const ActConfig &config, const DependenceEncoder &encoder)
{
    const auto findings = validateActConfig(config, encoder.width());
    if (!clean(findings))
        ACT_FATAL("invalid ActConfig:\n" << formatFindings(findings));
    return config;
}

} // namespace

ActModule::ActModule(const ActConfig &config,
                     const DependenceEncoder &encoder)
    : config_(checkedConfig(config, encoder)), encoder_(encoder.clone()),
      network_(config.hw, config.topology), own_arena_(config_),
      arena_(&own_arena_)
{
    for (std::size_t m = 1; m < config_.ensemble.members; ++m)
        extras_.emplace_back(config_.hw, config_.topology);
}

bool
ActModule::weightsUsable(std::span<const double> weights) const
{
    // loadWeights() quantises through an int32 cast, so NaN/Inf or
    // out-of-range values (e.g. from an injected bit flip in the
    // store) would be undefined behaviour — they must be rejected
    // before they reach the network. Validation runs against the
    // network's current topology, which only diverges from the
    // configured one after a dynamic-topology resize.
    return clean(validateWeights(network_.topology(), weights));
}

void
ActModule::recordQuarantine(ThreadId tid, const char *where)
{
    // Degradation, not death: a corrupt stored set is quarantined and
    // the module retrains from scratch, exactly as if the store had no
    // entry for the thread. The counter/log make the event visible
    // beyond ActModuleStats; the per-tid tally drives escalation so a
    // rotten store entry cannot trap the module in a silent
    // quarantine-retrain loop.
    ActArena &arena = *arena_;
    ++arena.stats.quarantined_weight_sets;
    static const telemetry::Counter quarantines =
        telemetry::MetricsRegistry::global().counter(
            "act.weight_quarantine");
    quarantines.inc();
    telemetry::SpanTracer::global().instant(
        "weight_quarantine", "act",
        {telemetry::arg("tid", std::uint64_t{tid})});
    logWarnEvent("act.weight_quarantine",
                 {logField("tid", std::uint64_t{tid}),
                  logField("where", where)});
    const std::uint32_t count = ++arena.quarantines_by_tid[tid];
    if (count == kQuarantineEscalationThreshold) {
        ++arena.stats.quarantine_escalations;
        static const telemetry::Counter escalations =
            telemetry::MetricsRegistry::global().counter(
                "act.quarantine_escalations");
        escalations.inc();
        logWarnEvent("act.quarantine_escalation",
                     {logField("tid", std::uint64_t{tid}),
                      logField("quarantines", std::uint64_t{count})});
    }
}

std::size_t
ActModule::initThread(ThreadId tid, const WeightStore &store)
{
    ActArena &arena = *arena_;

    // Escalated tids skip the store entirely: their entries already
    // failed quarantine repeatedly, so the module goes straight to
    // online training instead of reloading known-bad weights.
    const auto seen = arena.quarantines_by_tid.find(tid);
    const bool distrusted =
        seen != arena.quarantines_by_tid.end() &&
        seen->second >= kQuarantineEscalationThreshold;

    auto weights = distrusted ? std::nullopt : store.get(tid);
    if (weights && network_.topology().hidden != config_.topology.hidden &&
        weights->size() != network_.weightCount()) {
        // After a dynamic-topology resize the binary's stored sets no
        // longer fit the network; that is a size change, not
        // corruption, so fall back to training without quarantining.
        weights.reset();
    }
    if (weights && config_.protector &&
        config_.protector->inspect(weightSetId(tid, 0), *weights)) {
        ++arena.stats.repaired_weight_sets;
        static const telemetry::Counter repairs =
            telemetry::MetricsRegistry::global().counter(
                "act.weight_repairs");
        repairs.inc();
        logWarnEvent("act.weight_repair",
                     {logField("tid", std::uint64_t{tid}),
                      logField("member", std::uint64_t{0})});
    }
    const bool usable = weights && weightsUsable(*weights);
    if (weights && !usable)
        recordQuarantine(tid, "init");
    if (usable) {
        network_.loadWeights(*weights);
        arena.mode = ActMode::kTesting;
    } else {
        // Default weights: the all-zero network outputs 0.5 for every
        // input, classifying everything as (barely) valid until the
        // first measured interval drives the module into training.
        std::vector<double> zeros(network_.weightCount(), 0.0);
        network_.loadWeights(zeros);
        switchMode(ActMode::kTraining);
    }

    // Ensemble extras: each member loads its own stored set; a member
    // with no (usable) set of its own falls back to member 0's, which
    // degenerates that member to a unanimous copy instead of an
    // always-valid zero network that would starve the quorum.
    for (std::size_t m = 1; m < memberCount(); ++m) {
        auto mw = distrusted ? std::nullopt : store.getMember(tid, m);
        if (mw && mw->size() != network_.weightCount())
            mw.reset();
        if (mw && config_.protector &&
            config_.protector->inspect(weightSetId(tid, m), *mw)) {
            ++arena.stats.repaired_weight_sets;
            static const telemetry::Counter repairs =
                telemetry::MetricsRegistry::global().counter(
                    "act.weight_repairs");
            repairs.inc();
            logWarnEvent("act.weight_repair",
                         {logField("tid", std::uint64_t{tid}),
                          logField("member", std::uint64_t{m})});
        }
        const bool musable = mw && weightsUsable(*mw);
        if (mw && !musable)
            recordQuarantine(tid, "init");
        if (musable) {
            extras_[m - 1].loadWeights(*mw);
        } else if (usable) {
            extras_[m - 1].loadWeights(*weights);
        } else {
            std::vector<double> zeros(network_.weightCount(), 0.0);
            extras_[m - 1].loadWeights(zeros);
        }
    }

    arena.input.clear();
    arena.rate.resetInterval();
    return network_.weightCount() * memberCount();
}

std::vector<double>
ActModule::saveWeights() const
{
    std::vector<double> all = network_.storeWeights();
    for (const HwNeuralNetwork &extra : extras_) {
        const std::vector<double> w = extra.storeWeights();
        all.insert(all.end(), w.begin(), w.end());
    }
    return all;
}

void
ActModule::restoreWeights(const std::vector<double> &weights)
{
    const std::size_t chunk = network_.weightCount();
    const std::size_t members = memberCount();
    bool usable = weights.size() == chunk * members;
    for (std::size_t m = 0; usable && m < members; ++m) {
        usable = weightsUsable(
            std::span<const double>(weights).subspan(m * chunk, chunk));
    }
    if (usable) {
        for (std::size_t m = 0; m < members; ++m) {
            const auto part =
                std::span<const double>(weights).subspan(m * chunk, chunk);
            if (m == 0)
                network_.loadWeights(part);
            else
                extras_[m - 1].loadWeights(part);
        }
    } else {
        ++arena_->stats.quarantined_weight_sets;
        static const telemetry::Counter quarantines =
            telemetry::MetricsRegistry::global().counter(
                "act.weight_quarantine");
        quarantines.inc();
        telemetry::SpanTracer::global().instant("weight_quarantine",
                                                "act", {});
        logWarnEvent("act.weight_quarantine",
                     {logField("where", "restore")});
        std::vector<double> zeros(chunk, 0.0);
        network_.loadWeights(zeros);
        for (HwNeuralNetwork &extra : extras_)
            extra.loadWeights(zeros);
        switchMode(ActMode::kTraining);
    }
    arena_->input.clear();
}

void
ActModule::exportWeights(WeightStore &store, ThreadId tid) const
{
    std::vector<double> w = network_.storeWeights();
    if (w.size() == store.weightCount())
        store.set(tid, std::move(w));
    for (std::size_t m = 1; m < memberCount(); ++m) {
        std::vector<double> mw = extras_[m - 1].storeWeights();
        if (mw.size() == store.weightCount())
            store.setMember(tid, m, std::move(mw));
    }
}

void
ActModule::flushPipeline()
{
    network_.flush();
}

void
ActModule::switchMode(ActMode next)
{
    if (arena_->mode == next)
        return;
    arena_->mode = next;
    ++arena_->stats.mode_switches;
    // Mode flips happen at most once per misprediction-rate interval,
    // so an instant event here cannot perturb the per-event hot loop.
    telemetry::SpanTracer::global().instant(
        "mode_switch", "act",
        {telemetry::arg("to", next == ActMode::kTraining ? "training"
                                                         : "testing")});
    arena_->rate.resetInterval();
}

void
ActModule::resizeHidden(std::size_t hidden)
{
    const std::size_t before = network_.topology().hidden;
    if (hidden == before || hidden == 0)
        return;
    const Topology next{config_.topology.inputs, hidden};
    network_.setTopology(next); // zeroes the weights
    for (HwNeuralNetwork &extra : extras_)
        extra.setTopology(next);
    if (hidden > before)
        ++arena_->stats.topology_grows;
    else
        ++arena_->stats.topology_shrinks;
    telemetry::SpanTracer::global().instant(
        "topology_resize", "act",
        {telemetry::arg("hidden", std::uint64_t{hidden})});
    logWarnEvent("act.topology_resize",
                 {logField("from", std::uint64_t{before}),
                  logField("to", std::uint64_t{hidden})});
    // Fresh zero weights classify everything as (barely) valid; the
    // module must retrain at the new size before testing again.
    if (arena_->mode != ActMode::kTraining)
        switchMode(ActMode::kTraining);
    else
        arena_->rate.resetInterval();
}

void
ActModule::onIntervalComplete()
{
    ActArena &arena = *arena_;
    // Members share the M-neuron hardware bank, so the growth ceiling
    // is the per-member slice of it, not the whole bank.
    const std::size_t max_hidden =
        config_.hw.neuron.max_inputs / memberCount();
    const ModeDecision decision = modeControllerStep(
        config_.controller, config_.misprediction_threshold, arena.ctl,
        arena.mode == ActMode::kTraining, arena.rate.lastRate(),
        network_.topology().hidden, max_hidden);
    if (decision.dwell_suppressed)
        ++arena.stats.dwell_suppressed_switches;
    if (decision.switch_mode) {
        switchMode(arena.mode == ActMode::kTesting ? ActMode::kTraining
                                                   : ActMode::kTesting);
    } else if (decision.grow) {
        resizeHidden(network_.topology().hidden + 1);
    } else if (decision.shrink) {
        resizeHidden(network_.topology().hidden - 1);
    }
}

ActOutcome
ActModule::onDependence(const RawDependence &dep, ThreadId tid,
                        Cycle cycle)
{
    ActOutcome outcome;
    ActArena &arena = *arena_;
    ++arena.stats.dependences;
    if (arena.mode == ActMode::kTraining)
        ++arena.stats.training_dependences;

    if (config_.faults && config_.faults->dropInputDependence()) {
        // Injected Input Generator fault: the dependence never reaches
        // the buffer, as if the hardware write port glitched.
        ++arena.stats.input_drops_injected;
        return outcome;
    }
    if (arena.input.push(dep))
        ++arena.stats.input_buffer_overwrites;
    if (!arena.input.lastSequence(config_.sequence_length,
                                  arena.seq_scratch))
        return outcome;
    const DependenceSequence &sequence = arena.seq_scratch;

    // Timing: the load retires only once the input FIFO accepts the
    // sequence. A full FIFO stalls it (Section III-C / IV-A). The
    // ensemble shares the M-neuron bank, so one acceptance covers all
    // members — the budget check in validateActConfig guarantees they
    // fit side by side.
    const bool training = arena.mode == ActMode::kTraining;
    Cycle now = cycle;
    for (;;) {
        const AcceptResult accepted = network_.offer(now, training);
        if (accepted.accepted)
            break;
        ++arena.stats.stalled_offers;
        ACT_ASSERT(accepted.retry_at > now);
        outcome.stall_cycles += accepted.retry_at - now;
        arena.stats.stall_cycles += accepted.retry_at - now;
        now = accepted.retry_at;
    }

    // Function: classify the sequence (and learn from it in training
    // mode).
    encoder_->encodeSequenceInto(sequence, arena.input_scratch);
    const std::vector<double> &inputs = arena.input_scratch;
    outcome.classified = true;
    ++arena.stats.predictions;

    double output = 0.0;
    double raw = 0.0;
    if (extras_.empty()) {
        if (training) {
            // All dependences are presumed valid; the network learns
            // the ones it would have rejected.
            output = network_.infer(inputs);
            if (output < 0.5) {
                network_.train(inputs, 1.0, config_.learning_rate);
                ++arena.stats.train_updates;
            }
        } else {
            output = network_.inferWithRaw(inputs, raw);
        }
        outcome.predicted_invalid = output < 0.5;
    } else {
        // Ensemble: every member classifies (and, in training mode,
        // learns) independently; the suspect flag is the quorum vote.
        std::size_t votes = 0;
        if (training) {
            output = network_.infer(inputs);
            if (output < 0.5) {
                ++votes;
                network_.train(inputs, 1.0, config_.learning_rate);
                ++arena.stats.train_updates;
            }
            for (HwNeuralNetwork &extra : extras_) {
                if (extra.infer(inputs) < 0.5) {
                    ++votes;
                    extra.train(inputs, 1.0, config_.learning_rate);
                    ++arena.stats.train_updates;
                }
            }
        } else {
            output = network_.inferWithRaw(inputs, raw);
            if (output < 0.5)
                ++votes;
            for (const HwNeuralNetwork &extra : extras_) {
                if (extra.infer(inputs) < 0.5)
                    ++votes;
            }
        }
        outcome.predicted_invalid = votes >= quorum();
        accountVotes(arena, votes, output < 0.5,
                     outcome.predicted_invalid);
    }
    outcome.output = output;

    if (outcome.predicted_invalid) {
        ++arena.stats.predicted_invalid;
        // The Debug Buffer records the raw accumulator value: the
        // ranking tie-break wants "the most negative output", which
        // the saturated sigmoid cannot resolve. In training mode the
        // weights just moved, so the raw value is re-read from the
        // updated network (matching what the hardware would log after
        // the back-propagation pass); in testing mode the forward pass
        // already produced it.
        if (config_.faults && config_.faults->dropDebugLog()) {
            // Injected Debug Buffer fault: the flagged sequence is
            // silently lost before it can be logged.
            ++arena.stats.debug_drops_injected;
        } else if (arena.debug.log(
                       DebugEntry{sequence,
                                  training ? network_.rawOutput(inputs)
                                           : raw,
                                  arena.stats.predictions, tid})) {
            ++arena.stats.debug_buffer_overwrites;
        }
    }

    // Periodic misprediction-rate check drives the mode switches. A
    // prediction of "invalid" that the execution survives counts as a
    // misprediction (Section III-C).
    if (arena.rate.record(outcome.predicted_invalid))
        onIntervalComplete();
    return outcome;
}

void
ActModule::accountVotes(ActArena &arena, std::size_t votes,
                        bool member0_invalid, bool flagged)
{
    const std::size_t members = memberCount();
    const bool unanimous = votes == 0 || votes == members;
    if (!unanimous)
        ++arena.stats.ensemble_disagreements;
    if (member0_invalid != flagged)
        ++arena.stats.quorum_overrides;
    const double beta = config_.ensemble.health_beta;
    arena.ensemble_health = (1.0 - beta) * arena.ensemble_health +
                            beta * (unanimous ? 1.0 : 0.0);
}

bool
ActModule::stageDependence(const RawDependence &dep)
{
    ActArena &arena = *arena_;
    // The split-phase path has no training half: commits never touch
    // the weight registers, which is what lets many arenas share one
    // engine. Callers keep the module in testing mode by construction
    // (the fleet pins the rate interval unreachably long).
    ACT_ASSERT(arena.mode == ActMode::kTesting);
    ++arena.stats.dependences;

    if (config_.faults && config_.faults->dropInputDependence()) {
        ++arena.stats.input_drops_injected;
        return false;
    }
    if (arena.input.push(dep))
        ++arena.stats.input_buffer_overwrites;
    if (!arena.input.lastSequence(config_.sequence_length,
                                  arena.seq_scratch))
        return false;
    encoder_->encodeSequenceInto(arena.seq_scratch, arena.input_scratch);
    return true;
}

StagedOutcome
ActModule::commitPrediction(const DependenceSequence &sequence,
                            std::span<const double> inputs, double output,
                            ThreadId tid)
{
    ActArena &arena = *arena_;
    ACT_ASSERT(arena.mode == ActMode::kTesting);
    StagedOutcome outcome;
    ++arena.stats.predictions;
    outcome.predicted_invalid = output < 0.5;

    if (outcome.predicted_invalid) {
        ++arena.stats.predicted_invalid;
        // Flagged sequences are rare (the whole premise of the Debug
        // Buffer), so the raw accumulator re-read — a pure forward
        // pass over the same weights the batch inference used — stays
        // off the common path.
        outcome.raw = network_.rawOutput(inputs);
        if (config_.faults && config_.faults->dropDebugLog()) {
            ++arena.stats.debug_drops_injected;
        } else if (arena.debug.log(DebugEntry{sequence, outcome.raw,
                                              arena.stats.predictions,
                                              tid})) {
            ++arena.stats.debug_buffer_overwrites;
        }
    }

    if (arena.rate.record(outcome.predicted_invalid))
        onIntervalComplete();
    return outcome;
}

StagedOutcome
ActModule::commitEnsemble(const DependenceSequence &sequence,
                          std::span<const double> inputs,
                          std::span<const double> outputs, ThreadId tid)
{
    ACT_ASSERT(outputs.size() == memberCount());
    if (extras_.empty())
        return commitPrediction(sequence, inputs, outputs[0], tid);

    ActArena &arena = *arena_;
    ACT_ASSERT(arena.mode == ActMode::kTesting);
    StagedOutcome outcome;
    ++arena.stats.predictions;
    std::size_t votes = 0;
    for (const double output : outputs) {
        if (output < 0.5)
            ++votes;
    }
    outcome.predicted_invalid = votes >= quorum();
    accountVotes(arena, votes, outputs[0] < 0.5,
                 outcome.predicted_invalid);

    if (outcome.predicted_invalid) {
        ++arena.stats.predicted_invalid;
        outcome.raw = network_.rawOutput(inputs);
        if (config_.faults && config_.faults->dropDebugLog()) {
            ++arena.stats.debug_drops_injected;
        } else if (arena.debug.log(DebugEntry{sequence, outcome.raw,
                                              arena.stats.predictions,
                                              tid})) {
            ++arena.stats.debug_buffer_overwrites;
        }
    }

    if (arena.rate.record(outcome.predicted_invalid))
        onIntervalComplete();
    return outcome;
}

} // namespace act
