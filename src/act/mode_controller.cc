#include "act/mode_controller.hh"

namespace act
{

ModeDecision
modeControllerStep(const ModeControllerConfig &config,
                   double legacy_threshold, ModeControllerState &state,
                   bool training, double rate, std::size_t hidden,
                   std::size_t max_hidden)
{
    ModeDecision decision;

    if (!config.self_tuning) {
        // The paper's raw latch, verbatim: one sample, one threshold.
        // No state is read or written, so the dormant path carries no
        // behavioural residue of the controller at all.
        if (!training && rate > legacy_threshold)
            decision.switch_mode = true;
        else if (training && rate <= legacy_threshold)
            decision.switch_mode = true;
        return decision;
    }

    state.ewma = state.ewma_valid
                     ? config.ewma_alpha * rate +
                           (1.0 - config.ewma_alpha) * state.ewma
                     : rate;
    state.ewma_valid = true;
    ++state.intervals_in_mode;

    // Hysteresis: the dead band (exit_training, enter_training] never
    // requests a switch, so rates oscillating inside it cannot flap.
    const bool wants_switch = training
                                  ? state.ewma <= config.exit_training
                                  : state.ewma > config.enter_training;
    if (wants_switch) {
        if (state.intervals_in_mode < config.min_dwell_intervals) {
            decision.dwell_suppressed = true;
        } else {
            decision.switch_mode = true;
            state.intervals_in_mode = 0;
            state.poor_streak = 0;
            state.calm_streak = 0;
            return decision;
        }
    }

    if (!config.dynamic_topology)
        return decision;

    if (training) {
        // Persistently poor while already retraining: the topology is
        // too small for the workload — grow toward the budget.
        state.calm_streak = 0;
        if (state.ewma > config.enter_training)
            ++state.poor_streak;
        else
            state.poor_streak = 0;
        if (state.poor_streak >= config.grow_patience &&
            hidden < max_hidden) {
            decision.grow = true;
            state.poor_streak = 0;
            state.intervals_in_mode = 0;
        }
    } else {
        // Persistently calm while testing: the layer is oversized —
        // shrink to free budget (the module retrains at the new size).
        state.poor_streak = 0;
        if (state.ewma < config.shrink_below)
            ++state.calm_streak;
        else
            state.calm_streak = 0;
        if (state.calm_streak >= config.shrink_patience &&
            hidden > config.min_hidden) {
            decision.shrink = true;
            state.calm_streak = 0;
            state.intervals_in_mode = 0;
        }
    }
    return decision;
}

} // namespace act
