/**
 * @file
 * The self-tuning test/train mode controller (Adaptivity 2.0).
 *
 * The paper drives the online testing <-> training switch with a
 * single misprediction-rate threshold sampled once per interval
 * (Section III-C). Under injected faults that latch flaps: one noisy
 * interval flips the mode, the next flips it back, and every flip
 * resets the measurement window. This controller keeps the legacy
 * latch as the bit-identical default and adds a self-tuning policy:
 *
 *  - EWMA misprediction tracking: decisions follow a smoothed rate,
 *    so one corrupted interval cannot flip the mode by itself.
 *  - Hysteresis: separate enter-training and exit-training thresholds
 *    open a dead band in which no switch ever happens.
 *  - Minimum dwell: a mode holds for at least min_dwell_intervals
 *    completed intervals, bounding the switch frequency to
 *    1 / min_dwell regardless of the rate sequence (the property the
 *    adversarial tests pin).
 *  - Dynamic topology: when the EWMA stays poor through grow_patience
 *    training intervals the hidden layer grows toward the M-neuron
 *    hardware budget; when it stays calm through shrink_patience
 *    testing intervals the layer shrinks toward min_hidden.
 *
 * The step function is pure over (config, state, inputs) — no clocks,
 * no globals — so controller dynamics are unit-testable without an
 * ActModule and replays are deterministic.
 */

#ifndef ACT_ACT_MODE_CONTROLLER_HH
#define ACT_ACT_MODE_CONTROLLER_HH

#include <cstdint>

#include "act/act_config.hh"

namespace act
{

/** Per-arena controller state (lives in ActArena; all-zero = fresh). */
struct ModeControllerState
{
    double ewma = 0.0;
    bool ewma_valid = false;

    /** Completed intervals since the last mode switch. */
    std::uint64_t intervals_in_mode = 0;

    /** Consecutive poor-EWMA training intervals (grow candidate). */
    std::uint64_t poor_streak = 0;

    /** Consecutive calm-EWMA testing intervals (shrink candidate). */
    std::uint64_t calm_streak = 0;
};

/** What one completed interval asks the module to do. */
struct ModeDecision
{
    /** Flip testing <-> training. */
    bool switch_mode = false;

    /** A switch was wanted but suppressed by the dwell bound. */
    bool dwell_suppressed = false;

    /** Grow the hidden layer by one neuron (implies retraining). */
    bool grow = false;

    /** Shrink the hidden layer by one neuron (implies retraining). */
    bool shrink = false;
};

/**
 * Advance the controller by one completed measurement interval.
 *
 * @param config           Policy knobs.
 * @param legacy_threshold The raw-latch threshold used when
 *                         config.self_tuning is false (the module's
 *                         misprediction_threshold).
 * @param state            Per-arena state, updated in place.
 * @param training         Whether the module is in training mode.
 * @param rate             The interval's misprediction rate.
 * @param hidden           Current hidden-layer size.
 * @param max_hidden       Hardware budget ceiling for the layer.
 *
 * With self_tuning off this reproduces the historical latch exactly
 * (compare rate > threshold / rate <= threshold, no state touched):
 * the dormant path stays bit-identical to the pre-controller module.
 */
ModeDecision modeControllerStep(const ModeControllerConfig &config,
                                double legacy_threshold,
                                ModeControllerState &state, bool training,
                                double rate, std::size_t hidden,
                                std::size_t max_hidden);

} // namespace act

#endif // ACT_ACT_MODE_CONTROLLER_HH
