/**
 * @file
 * The per-processor ACT Module (AM) of Figure 4(b) / Figure 5.
 *
 * For every completed non-speculative load with a known last writer,
 * the AM forms the RAW dependence, pushes it through the Input
 * Generator Buffer, and asks its hardware neural network whether the
 * sequence of the last N dependences is valid.
 *
 *  - Online testing mode: predicted-invalid sequences are logged into
 *    the Debug Buffer and counted by the Invalid Counter. When the
 *    periodically measured misprediction rate exceeds the threshold,
 *    the AM switches to online training.
 *  - Online training mode: every dependence is taken as valid;
 *    sequences the network still calls invalid are back-propagated
 *    toward "valid" (and still logged, in case one of them really is
 *    the bug). When the rate drops below the threshold the AM returns
 *    to testing mode.
 *
 * The timing side mirrors Section IV-A: the load that produced the
 * dependence can only retire once the pipeline's input FIFO accepts
 * it, so a full FIFO back-pressures the core.
 *
 * State layout: everything mutable per run lives in an ActArena. A
 * stand-alone module owns one internally (the classic one-module,
 * one-run shape the simulator uses), but the arena can be swapped via
 * bindArena() so one module engine — config, encoder, weight
 * registers — serves many disjoint monitoring contexts. The fleet
 * service multiplexes hundreds of client streams over a handful of
 * shard modules exactly this way: each client owns an arena, the shard
 * owns the engine, and no mutable state is ever shared across shards.
 */

#ifndef ACT_ACT_ACT_MODULE_HH
#define ACT_ACT_ACT_MODULE_HH

#include <memory>
#include <span>
#include <unordered_map>

#include "act/act_config.hh"
#include "act/buffers.hh"
#include "act/mode_controller.hh"
#include "act/weight_store.hh"
#include "common/stats.hh"
#include "deps/encoder.hh"
#include "hwnn/pipeline.hh"

namespace act
{

/** The AM's operating mode. */
enum class ActMode : std::uint8_t
{
    kTesting,
    kTraining
};

/** Counters exposed for the benches. */
struct ActModuleStats
{
    std::uint64_t dependences = 0;     //!< Dependences observed.
    std::uint64_t predictions = 0;     //!< Sequences classified.
    std::uint64_t predicted_invalid = 0;
    std::uint64_t train_updates = 0;   //!< Back-propagation passes.
    std::uint64_t mode_switches = 0;
    std::uint64_t stalled_offers = 0;  //!< Loads delayed by a full FIFO.
    Cycle stall_cycles = 0;            //!< Total retire-stall cycles.
    std::uint64_t training_dependences = 0; //!< Seen while training.

    // Degradation accounting. The overwrite counters tally ring
    // saturation (normal for the sliding input window, real loss for
    // the Debug Buffer); the injected/quarantine counters are zero on
    // any fault-free run.
    std::uint64_t input_buffer_overwrites = 0; //!< Ring-saturated pushes.
    std::uint64_t debug_buffer_overwrites = 0; //!< Flags lost to saturation.
    std::uint64_t input_drops_injected = 0;    //!< Faulted-away deps.
    std::uint64_t debug_drops_injected = 0;    //!< Faulted-away log entries.
    std::uint64_t quarantined_weight_sets = 0; //!< Corrupt sets rejected.

    // Adaptivity 2.0 accounting. All of these stay zero on a dormant
    // module (single member, legacy latch, no protector): the
    // ensemble/controller/protection machinery never touches them.
    std::uint64_t quorum_overrides = 0;     //!< Votes flipping member 0.
    std::uint64_t ensemble_disagreements = 0; //!< Split member votes.
    std::uint64_t repaired_weight_sets = 0; //!< Shadow-copy repairs.
    std::uint64_t quarantine_escalations = 0; //!< Distrusted tids.
    std::uint64_t dwell_suppressed_switches = 0; //!< Flaps absorbed.
    std::uint64_t topology_grows = 0;       //!< Hidden neurons added.
    std::uint64_t topology_shrinks = 0;     //!< Hidden neurons removed.
};

/**
 * All per-run mutable state of one ACT Module: the two SRAM rings, the
 * misprediction-rate interval, the mode latch, the counters, and the
 * scratch the hot loop reuses. A module always operates on exactly one
 * bound arena; swapping arenas switches monitoring contexts without
 * touching the engine (weights stay put — the fleet's testing-only
 * contract — and save/restoreWeights cover the training case).
 */
struct ActArena
{
    explicit ActArena(const ActConfig &config)
        : input(config.input_buffer_entries),
          debug(config.debug_buffer_entries), rate(config.interval_length)
    {}

    InputGeneratorBuffer input;
    DebugBuffer debug;
    IntervalRate rate;
    ActMode mode = ActMode::kTesting;
    ActModuleStats stats;

    /** Self-tuning controller state (untouched under the legacy latch). */
    ModeControllerState ctl;

    /**
     * Ensemble health: EWMA of per-prediction member agreement, 1 =
     * unanimous always. Only updated with more than one member.
     */
    double ensemble_health = 1.0;

    /**
     * Quarantine escalation (per run): how often each tid's stored
     * weights were quarantined. A tid quarantined twice is distrusted —
     * initThread stops consulting the store for it and goes straight
     * to training instead of silently re-entering the quarantine loop.
     */
    std::unordered_map<ThreadId, std::uint32_t> quarantines_by_tid;

    // Scratch reused across onDependence/stageDependence calls: the
    // hot loop runs once per tracked load and must not allocate per
    // call once the rings warm up.
    DependenceSequence seq_scratch;
    std::vector<double> input_scratch;
};

/** Outcome of feeding one dependence to the AM. */
struct ActOutcome
{
    bool classified = false;        //!< A full sequence was formed.
    bool predicted_invalid = false;
    double output = 0.0;            //!< NN output for the sequence.
    Cycle stall_cycles = 0;         //!< Retire delay from FIFO pressure.
};

/** Result of committing one batched (staged) prediction. */
struct StagedOutcome
{
    bool predicted_invalid = false;

    /**
     * Pre-sigmoid accumulator, read back only for flagged sequences
     * (the ranking tie-break wants the most negative output, which the
     * saturated sigmoid cannot resolve). Zero when not flagged.
     */
    double raw = 0.0;
};

/**
 * One per-core ACT Module.
 */
class ActModule
{
  public:
    /**
     * @param config  Module parameters.
     * @param encoder Prototype encoder (cloned; the AM owns its copy).
     */
    ActModule(const ActConfig &config, const DependenceEncoder &encoder);

    const ActConfig &config() const { return config_; }
    ActMode mode() const { return arena_->mode; }
    const ActModuleStats &stats() const { return arena_->stats; }
    const DebugBuffer &debugBuffer() const { return arena_->debug; }
    DebugBuffer &debugBuffer() { return arena_->debug; }
    const HwNeuralNetwork &network() const { return network_; }

    // --- Ensemble ---------------------------------------------------

    /** Member networks (1 = dormant single-network module). */
    std::size_t memberCount() const { return 1 + extras_.size(); }

    /** Member @p m's network (member 0 is the primary). */
    const HwNeuralNetwork &
    member(std::size_t m) const
    {
        return m == 0 ? network_ : extras_[m - 1];
    }

    /** Invalid votes needed to flag a sequence. */
    std::size_t
    quorum() const
    {
        return config_.ensemble.effectiveQuorum(memberCount());
    }

    /** Agreement health of the bound arena (1 = always unanimous). */
    double ensembleHealth() const { return arena_->ensemble_health; }

    // --- Arena management -----------------------------------------

    /** A fresh arena sized for this module's configuration. */
    ActArena makeArena() const { return ActArena(config_); }

    /**
     * Operate on @p arena from now on (nullptr rebinds the internally
     * owned arena). The caller keeps @p arena alive while bound. The
     * engine — weight registers, pipeline — is untouched, so a
     * testing-mode module can round-robin arenas freely.
     */
    void
    bindArena(ActArena *arena)
    {
        arena_ = arena != nullptr ? arena : &own_arena_;
    }

    /** The currently bound arena (the internal one by default). */
    const ActArena &arena() const { return *arena_; }

    /**
     * Initialise the network for a (newly scheduled) thread: stored
     * weights if the store has them, default (zero) weights otherwise
     * — the latter force the module into online training.
     *
     * @return Number of weight registers transferred (for the ISA cost
     *         model); zero weights still count as a full transfer.
     */
    std::size_t initThread(ThreadId tid, const WeightStore &store);

    /**
     * Read the current weights back (thread exit / context switch).
     * With K ensemble members the K flat sets are concatenated in
     * member order; for K = 1 this is exactly the member-0 vector.
     */
    std::vector<double> saveWeights() const;

    /** Restore previously saved weights (context switch in; accepts
     *  the concatenated layout saveWeights produces). */
    void restoreWeights(const std::vector<double> &weights);

    /**
     * Write the current weights back into @p store for @p tid (thread
     * exit, Section IV-C): member 0 into the plain per-thread slot,
     * ensemble extras into their member slots. Sets whose size no
     * longer matches the store's topology (after a dynamic-topology
     * resize) are skipped — the binary cannot be patched with them.
     */
    void exportWeights(WeightStore &store, ThreadId tid) const;

    /** Flush in-flight NN inputs (context switch, Section IV-D). */
    void flushPipeline();

    /**
     * Process one RAW dependence produced by a completed load.
     *
     * @param dep   The dependence (S -> L).
     * @param tid   Thread executing the load.
     * @param cycle Core cycle at which the load completed.
     */
    ActOutcome onDependence(const RawDependence &dep, ThreadId tid,
                            Cycle cycle);

    // --- Split-phase classification (fleet batcher) ----------------

    /**
     * First half of onDependence for a *testing-mode* module with no
     * timing model: push the dependence through the input ring and,
     * when a full sequence forms, encode it into the arena scratch
     * (stagedSequence()/stagedInputs()). The caller then obtains the
     * network activation — typically via HwNeuralNetwork::inferBatch
     * over many staged sequences at once — and applies it with
     * commitPrediction(). stage+commit is bit-equivalent to the
     * function half of onDependence because the testing-mode forward
     * pass is pure.
     *
     * @return true when a full sequence was staged.
     */
    bool stageDependence(const RawDependence &dep);

    /** Sequence staged by the last successful stageDependence. */
    const DependenceSequence &stagedSequence() const
    {
        return arena_->seq_scratch;
    }

    /** Encoded inputs staged by the last successful stageDependence. */
    const std::vector<double> &stagedInputs() const
    {
        return arena_->input_scratch;
    }

    /**
     * Second half: account a prediction for a previously staged
     * sequence. @p inputs must be the staged encoding (for the raw
     * read-back of flagged sequences) and @p output the activation the
     * batch inference produced for it. Commits for one arena must
     * arrive in staging order.
     */
    StagedOutcome commitPrediction(const DependenceSequence &sequence,
                                   std::span<const double> inputs,
                                   double output, ThreadId tid);

    /**
     * Ensemble variant of commitPrediction: @p outputs carries one
     * activation per member (member-major, as produced by
     * inferEnsembleFlat) for the staged sequence. The suspect flag is
     * the quorum vote; the Debug Buffer raw value still comes from
     * member 0. With one member this is exactly commitPrediction.
     */
    StagedOutcome commitEnsemble(const DependenceSequence &sequence,
                                 std::span<const double> inputs,
                                 std::span<const double> outputs,
                                 ThreadId tid);

  private:
    void switchMode(ActMode next);

    /** Run the mode controller on a just-completed interval. */
    void onIntervalComplete();

    /** Reconfigure every member to @p hidden neurons (weights zeroed,
     *  module forced into training). */
    void resizeHidden(std::size_t hidden);

    /** Quarantine bookkeeping shared by initThread/restoreWeights. */
    void recordQuarantine(ThreadId tid, const char *where);

    /** Ensemble vote accounting: disagreements, quorum overrides and
     *  the agreement-health EWMA. Only called with extra members. */
    void accountVotes(ActArena &arena, std::size_t votes,
                      bool member0_invalid, bool flagged);

    /** True when @p weights can be loaded without UB (finite, in the
     *  Q15.16 range, count matching the topology). */
    bool weightsUsable(std::span<const double> weights) const;

    ActConfig config_;
    std::unique_ptr<DependenceEncoder> encoder_;
    HwNeuralNetwork network_;

    /** Ensemble members 1..K-1 (empty on a dormant module). */
    std::vector<HwNeuralNetwork> extras_;

    ActArena own_arena_;
    ActArena *arena_;
};

} // namespace act

#endif // ACT_ACT_ACT_MODULE_HH
