#include "act/weight_store.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/logging.hh"

namespace act
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

std::optional<std::vector<double>>
WeightStore::get(ThreadId tid) const
{
    const auto it = weights_.find(tid);
    if (it == weights_.end())
        return std::nullopt;
    return it->second;
}

void
WeightStore::set(ThreadId tid, std::vector<double> weights)
{
    ACT_ASSERT(weights.size() == weightCount());
    weights_[tid] = std::move(weights);
}

void
WeightStore::setAll(std::uint32_t count, const std::vector<double> &weights)
{
    for (ThreadId tid = 0; tid < count; ++tid)
        set(tid, weights);
}

std::vector<ThreadId>
WeightStore::tids() const
{
    std::vector<ThreadId> ids;
    ids.reserve(weights_.size());
    for (const auto &[tid, w] : weights_)
        ids.push_back(tid);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::size_t
WeightStore::weightCount() const
{
    return topology_.hidden * (topology_.inputs + 1) +
           (topology_.hidden + 1);
}

bool
WeightStore::save(const std::string &path) const
{
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (!file)
        return false;
    const std::uint64_t inputs = topology_.inputs;
    const std::uint64_t hidden = topology_.hidden;
    const std::uint64_t threads = weights_.size();
    if (std::fwrite(&inputs, sizeof(inputs), 1, file.get()) != 1 ||
        std::fwrite(&hidden, sizeof(hidden), 1, file.get()) != 1 ||
        std::fwrite(&threads, sizeof(threads), 1, file.get()) != 1) {
        return false;
    }
    for (const auto &[tid, w] : weights_) {
        const std::uint64_t id = tid;
        if (std::fwrite(&id, sizeof(id), 1, file.get()) != 1)
            return false;
        if (std::fwrite(w.data(), sizeof(double), w.size(), file.get()) !=
            w.size()) {
            return false;
        }
    }
    return true;
}

bool
WeightStore::load(const std::string &path)
{
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return false;
    std::uint64_t inputs = 0;
    std::uint64_t hidden = 0;
    std::uint64_t threads = 0;
    if (std::fread(&inputs, sizeof(inputs), 1, file.get()) != 1 ||
        std::fread(&hidden, sizeof(hidden), 1, file.get()) != 1 ||
        std::fread(&threads, sizeof(threads), 1, file.get()) != 1) {
        return false;
    }
    topology_ = Topology{inputs, hidden};
    weights_.clear();
    const std::size_t count = weightCount();
    for (std::uint64_t i = 0; i < threads; ++i) {
        std::uint64_t id = 0;
        if (std::fread(&id, sizeof(id), 1, file.get()) != 1)
            return false;
        std::vector<double> w(count);
        if (std::fread(w.data(), sizeof(double), count, file.get()) !=
            count) {
            return false;
        }
        weights_[static_cast<ThreadId>(id)] = std::move(w);
    }
    return true;
}

} // namespace act
