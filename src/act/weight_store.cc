#include "act/weight_store.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/logging.hh"

namespace act
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

std::optional<std::vector<double>>
WeightStore::get(ThreadId tid) const
{
    const auto it = weights_.find(tid);
    if (it == weights_.end())
        return std::nullopt;
    return it->second;
}

void
WeightStore::set(ThreadId tid, std::vector<double> weights)
{
    ACT_ASSERT(weights.size() == weightCount());
    weights_[tid] = std::move(weights);
}

void
WeightStore::setAll(std::uint32_t count, const std::vector<double> &weights)
{
    for (ThreadId tid = 0; tid < count; ++tid)
        set(tid, weights);
}

std::optional<std::vector<double>>
WeightStore::getMember(ThreadId tid, std::size_t member) const
{
    if (member == 0)
        return get(tid);
    const auto it = members_.find(weightSetId(tid, member));
    if (it == members_.end())
        return std::nullopt;
    return it->second;
}

void
WeightStore::setMember(ThreadId tid, std::size_t member,
                       std::vector<double> weights)
{
    if (member == 0) {
        set(tid, std::move(weights));
        return;
    }
    ACT_ASSERT(weights.size() == weightCount());
    members_[weightSetId(tid, member)] = std::move(weights);
}

bool
WeightStore::hasMember(ThreadId tid, std::size_t member) const
{
    if (member == 0)
        return has(tid);
    return members_.count(weightSetId(tid, member)) != 0;
}

std::size_t
WeightStore::memberCountFor(ThreadId tid) const
{
    if (!has(tid))
        return 0;
    std::size_t count = 1;
    while (members_.count(weightSetId(tid, count)) != 0)
        ++count;
    return count;
}

std::vector<std::uint64_t>
WeightStore::memberIds() const
{
    std::vector<std::uint64_t> ids;
    ids.reserve(members_.size());
    for (const auto &[id, w] : members_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::vector<ThreadId>
WeightStore::tids() const
{
    std::vector<ThreadId> ids;
    ids.reserve(weights_.size());
    for (const auto &[tid, w] : weights_)
        ids.push_back(tid);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::size_t
WeightStore::weightCount() const
{
    return topology_.hidden * (topology_.inputs + 1) +
           (topology_.hidden + 1);
}

bool
WeightStore::save(const std::string &path) const
{
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (!file)
        return false;
    const std::uint64_t inputs = topology_.inputs;
    const std::uint64_t hidden = topology_.hidden;
    const std::uint64_t threads = weights_.size() + members_.size();
    if (std::fwrite(&inputs, sizeof(inputs), 1, file.get()) != 1 ||
        std::fwrite(&hidden, sizeof(hidden), 1, file.get()) != 1 ||
        std::fwrite(&threads, sizeof(threads), 1, file.get()) != 1) {
        return false;
    }
    for (const auto &[tid, w] : weights_) {
        const std::uint64_t id = tid;
        if (std::fwrite(&id, sizeof(id), 1, file.get()) != 1)
            return false;
        if (std::fwrite(w.data(), sizeof(double), w.size(), file.get()) !=
            w.size()) {
            return false;
        }
    }
    // Ensemble extras ride in the same entry stream with the member
    // index in the id's upper 32 bits: a store without extras writes a
    // file byte-identical to the pre-ensemble format, and old readers
    // of new files only ever see ids they can represent.
    for (const std::uint64_t id : memberIds()) {
        const std::vector<double> &w = members_.at(id);
        if (std::fwrite(&id, sizeof(id), 1, file.get()) != 1)
            return false;
        if (std::fwrite(w.data(), sizeof(double), w.size(), file.get()) !=
            w.size()) {
            return false;
        }
    }
    return true;
}

bool
WeightStore::load(const std::string &path)
{
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return false;
    std::uint64_t inputs = 0;
    std::uint64_t hidden = 0;
    std::uint64_t threads = 0;
    if (std::fread(&inputs, sizeof(inputs), 1, file.get()) != 1 ||
        std::fread(&hidden, sizeof(hidden), 1, file.get()) != 1 ||
        std::fread(&threads, sizeof(threads), 1, file.get()) != 1) {
        return false;
    }
    topology_ = Topology{inputs, hidden};
    weights_.clear();
    members_.clear();
    const std::size_t count = weightCount();
    for (std::uint64_t i = 0; i < threads; ++i) {
        std::uint64_t id = 0;
        if (std::fread(&id, sizeof(id), 1, file.get()) != 1)
            return false;
        std::vector<double> w(count);
        if (std::fread(w.data(), sizeof(double), count, file.get()) !=
            count) {
            return false;
        }
        if (id >> 32 != 0)
            members_[id] = std::move(w);
        else
            weights_[static_cast<ThreadId>(id)] = std::move(w);
    }
    return true;
}

} // namespace act
