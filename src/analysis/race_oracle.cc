#include "analysis/race_oracle.hh"

#include <cstdio>
#include <unordered_map>

#include "analysis/vector_clock.hh"
#include "common/hashing.hh"

namespace act
{

namespace
{

/** Last access to one address by one thread (a FastTrack-style epoch). */
struct Access
{
    std::uint64_t clock = 0; //!< Owner's vector-clock component.
    Pc pc = kInvalidPc;
    SeqNum seq = 0;
    bool valid = false;
};

/** Per-address detector state. */
struct Location
{
    ThreadId write_tid = 0;
    Access write;

    /** Last read per thread since the last ordered write. */
    std::unordered_map<ThreadId, Access> reads;
};

/**
 * Did thread @p tid (clock @p now) observe the access by @p other at
 * component clock @p access_clock? If so, the access happens-before
 * every current event of @p tid.
 */
bool
ordered(const VectorClock &now, ThreadId other,
        std::uint64_t access_clock)
{
    return now.get(other) >= access_clock;
}

} // namespace

const char *
raceKindName(RaceKind kind)
{
    switch (kind) {
      case RaceKind::kWriteWrite: return "write-write";
      case RaceKind::kWriteRead: return "write-read";
      case RaceKind::kReadWrite: return "read-write";
    }
    return "unknown";
}

std::string
Race::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s race 0x%llx (t%u) -> 0x%llx (t%u) on 0x%llx "
                  "(%llu instance%s)",
                  raceKindName(kind),
                  static_cast<unsigned long long>(prior_pc), prior_tid,
                  static_cast<unsigned long long>(later_pc), later_tid,
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(count),
                  count == 1 ? "" : "s");
    return buf;
}

std::uint64_t
RaceReport::pairKey(RaceKind kind, Pc prior, Pc later)
{
    return hash3(prior, later, static_cast<std::uint64_t>(kind));
}

void
RaceReport::addRace(Race race)
{
    ++racy_instances;
    const std::uint64_t key =
        pairKey(race.kind, race.prior_pc, race.later_pc);
    if (!seen_.insert(key).second) {
        for (Race &existing : races_) {
            if (existing.kind == race.kind &&
                existing.prior_pc == race.prior_pc &&
                existing.later_pc == race.later_pc) {
                ++existing.count;
                return;
            }
        }
        return;
    }
    race.count = 1;
    races_.push_back(race);
}

std::vector<Race>
RaceReport::rawRaces() const
{
    std::vector<Race> raw;
    for (const Race &race : races_) {
        if (race.kind == RaceKind::kWriteRead)
            raw.push_back(race);
    }
    return raw;
}

bool
RaceReport::isRacyPair(Pc store_pc, Pc load_pc) const
{
    return seen_.count(pairKey(RaceKind::kWriteRead, store_pc, load_pc)) !=
           0;
}

bool
RaceReport::isRacy(const RawDependence &dep) const
{
    return dep.inter_thread && isRacyPair(dep.store_pc, dep.load_pc);
}

OracleScore
RaceReport::score(const std::vector<RawDependence> &predictions) const
{
    OracleScore result;
    std::unordered_set<std::uint64_t> predicted;
    for (const RawDependence &dep : predictions) {
        if (!dep.inter_thread)
            continue;
        if (!predicted.insert(pairKey(RaceKind::kWriteRead, dep.store_pc,
                                      dep.load_pc))
                 .second) {
            continue; // Count each static pair once.
        }
        ++result.considered;
        if (isRacyPair(dep.store_pc, dep.load_pc))
            ++result.true_positives;
        else
            ++result.false_positives;
    }
    for (const Race &race : races_) {
        if (race.kind != RaceKind::kWriteRead)
            continue;
        if (predicted.count(
                pairKey(RaceKind::kWriteRead, race.prior_pc,
                        race.later_pc)) == 0) {
            ++result.false_negatives;
        }
    }
    return result;
}

RaceReport
detectRaces(const Trace &trace)
{
    RaceReport report;

    std::unordered_map<ThreadId, VectorClock> clocks;
    std::unordered_map<Addr, VectorClock> lock_clocks;
    std::unordered_map<Addr, Location> locations;

    // Every thread starts with one epoch of its own so access clocks
    // are non-zero (an absent vector-clock component reads as zero).
    const auto threadClock = [&clocks](ThreadId tid) -> VectorClock & {
        auto [it, inserted] = clocks.try_emplace(tid);
        if (inserted)
            it->second.tick(tid);
        return it->second;
    };

    for (const TraceEvent &event : trace.events()) {
        const ThreadId tid = event.tid;
        VectorClock &now = threadClock(tid);

        switch (event.kind) {
          case EventKind::kLock: {
            ++report.sync_events;
            const auto it = lock_clocks.find(event.addr);
            if (it != lock_clocks.end())
                now.merge(it->second); // Acquire: see the last release.
            break;
          }
          case EventKind::kUnlock: {
            ++report.sync_events;
            lock_clocks[event.addr] = now; // Release: publish.
            now.tick(tid); // New epoch: later accesses are unordered.
            break;
          }
          case EventKind::kThreadCreate: {
            ++report.sync_events;
            const auto child = static_cast<ThreadId>(event.addr);
            VectorClock &child_clock = threadClock(child);
            child_clock.merge(now); // Child sees everything pre-spawn.
            child_clock.tick(child);
            now.tick(tid);
            break;
          }
          case EventKind::kThreadExit:
            ++report.sync_events;
            // No join event exists in the trace format: the exit
            // publishes nothing anyone can acquire.
            break;
          case EventKind::kBranch:
            break;
          case EventKind::kLoad:
          case EventKind::kStore: {
            ++report.memory_events;
            if (event.stack)
                break; // Thread-private by construction.
            Location &loc = locations[event.addr];
            const bool is_store = event.kind == EventKind::kStore;

            // Conflict with the last write.
            if (loc.write.valid && loc.write_tid != tid) {
                ++report.checked_pairs;
                if (!ordered(now, loc.write_tid, loc.write.clock)) {
                    Race race;
                    race.kind = is_store ? RaceKind::kWriteWrite
                                         : RaceKind::kWriteRead;
                    race.prior_pc = loc.write.pc;
                    race.later_pc = event.pc;
                    race.addr = event.addr;
                    race.prior_tid = loc.write_tid;
                    race.later_tid = tid;
                    race.prior_seq = loc.write.seq;
                    race.later_seq = event.seq;
                    report.addRace(race);
                }
            }

            if (is_store) {
                // A store also conflicts with reads since the last
                // ordered write.
                for (const auto &[reader, read] : loc.reads) {
                    if (reader == tid)
                        continue;
                    ++report.checked_pairs;
                    if (!ordered(now, reader, read.clock)) {
                        Race race;
                        race.kind = RaceKind::kReadWrite;
                        race.prior_pc = read.pc;
                        race.later_pc = event.pc;
                        race.addr = event.addr;
                        race.prior_tid = reader;
                        race.later_tid = tid;
                        race.prior_seq = read.seq;
                        race.later_seq = event.seq;
                        report.addRace(race);
                    }
                }
                loc.write_tid = tid;
                loc.write.clock = now.get(tid);
                loc.write.pc = event.pc;
                loc.write.seq = event.seq;
                loc.write.valid = true;
                loc.reads.clear();
            } else {
                Access &read = loc.reads[tid];
                read.clock = now.get(tid);
                read.pc = event.pc;
                read.seq = event.seq;
                read.valid = true;
            }
            break;
          }
        }
    }
    return report;
}

} // namespace act
