#include "analysis/atomicity.hh"

#include <cstdio>

namespace act
{

namespace
{

/** Is (p, r, c) one of the four unserializable kind patterns? */
bool
unserializable(bool p_store, bool r_store, bool c_store)
{
    if (r_store) {
        // R-W-R, W-W-R and R-W-W are unserializable; W-W-W is not
        // (the second local write masks the remote one either way).
        return !(p_store && c_store);
    }
    // Remote read: only W-R-W (sees a half-done update).
    return p_store && c_store;
}

const char *
patternName(bool p_store, bool r_store, bool c_store)
{
    const auto letter = [](bool store) { return store ? 'W' : 'R'; };
    static thread_local char buf[6];
    buf[0] = letter(p_store);
    buf[1] = '-';
    buf[2] = letter(r_store);
    buf[3] = '-';
    buf[4] = letter(c_store);
    buf[5] = '\0';
    return buf;
}

} // namespace

std::uint64_t
AtomicityDetector::tripleKey(Pc p_pc, Pc r_pc, Pc c_pc, bool p_store,
                             bool r_store, bool c_store)
{
    const std::uint64_t pattern =
        (p_store ? 4U : 0U) | (r_store ? 2U : 0U) | (c_store ? 1U : 0U);
    return hashCombine(hash3(p_pc, r_pc, c_pc), pattern);
}

void
AtomicityDetector::observe(const TraceEvent &event)
{
    if (!event.isMemory() || event.stack)
        return;
    const bool is_store = event.kind == EventKind::kStore;
    auto &windows = state_[event.addr];

    // Close the thread's own window: classify every remote access that
    // interleaved since its previous access to this address.
    LocalWindow &window = windows[event.tid];
    if (window.valid) {
        for (const RemoteAccess &remote : window.remotes) {
            if (!unserializable(window.is_store, remote.is_store,
                                is_store)) {
                continue;
            }
            const std::uint64_t key =
                tripleKey(window.pc, remote.pc, event.pc,
                          window.is_store, remote.is_store, is_store);
            triples_.insert(key);
            if (baseline_ != nullptr && baseline_->contains(key))
                continue; // Seen in passing runs: benign by invariant.
            AnalysisFinding finding;
            finding.detector = DetectorKind::kAtomicity;
            finding.code = patternName(window.is_store,
                                       remote.is_store, is_store);
            finding.pcs = {window.pc, remote.pc, event.pc};
            finding.witness_seqs = {window.seq, remote.seq, event.seq};
            finding.witness_tids = {event.tid, remote.tid, event.tid};
            finding.addr = event.addr;
            char buf[112];
            std::snprintf(
                buf, sizeof(buf),
                "unserializable %s interleaving on 0x%llx (remote t%u "
                "between two t%u accesses)",
                finding.code.c_str(),
                static_cast<unsigned long long>(event.addr), remote.tid,
                event.tid);
            finding.message = buf;
            report_.add(std::move(finding));
        }
    }
    window.valid = true;
    window.pc = event.pc;
    window.is_store = is_store;
    window.seq = event.seq;
    window.remotes.clear();

    // This access is a remote interleaver for every other thread's open
    // window on the address. Dedup statically per window so a tight
    // loop cannot grow the vector.
    for (auto &[tid, other] : windows) {
        if (tid == event.tid || !other.valid)
            continue;
        bool known = false;
        for (const RemoteAccess &remote : other.remotes) {
            if (remote.pc == event.pc && remote.is_store == is_store) {
                known = true;
                break;
            }
        }
        if (!known) {
            other.remotes.push_back(
                {event.pc, is_store, event.seq, event.tid});
        }
    }
}

void
AtomicityBaseline::addPassingTrace(const Trace &trace)
{
    AtomicityDetector detector;
    for (const TraceEvent &event : trace.events())
        detector.observe(event);
    const auto &keys = detector.tripleKeys();
    triples_.insert(keys.begin(), keys.end());
}

AnalysisReport
detectAtomicityViolations(const Trace &trace,
                          const AtomicityBaseline *baseline)
{
    AtomicityDetector detector(baseline);
    for (const TraceEvent &event : trace.events())
        detector.observe(event);
    AnalysisReport report = detector.takeReport();
    report.events_analyzed = trace.size();
    return report;
}

} // namespace act
