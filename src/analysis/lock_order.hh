/**
 * @file
 * Lock-order-graph deadlock detector.
 *
 * Maintains each thread's stack of held locks; acquiring B while
 * holding A adds the edge A -> B to a global lock-order graph, with the
 * first dynamic witness (thread, acquire seqs/PCs) kept per edge. After
 * the trace is consumed, a DFS over the graph (nodes and successors
 * visited in sorted lock-address order, so the result is deterministic)
 * extracts every cycle reachable from a back edge: a cycle A -> B ->
 * ... -> A means two executions can acquire the locks in opposing
 * orders and deadlock, even if this trace happened to get through.
 * Cycles are canonicalised (rotated so the smallest lock address leads)
 * before dedup, so the same cycle discovered from different entry
 * points reports once.
 */

#ifndef ACT_ANALYSIS_LOCK_ORDER_HH
#define ACT_ANALYSIS_LOCK_ORDER_HH

#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/detector.hh"
#include "trace/trace.hh"

namespace act
{

/** One ordered acquisition edge with its first witness. */
struct LockOrderEdge
{
    Addr held = 0;    //!< Lock already held...
    Addr acquired = 0; //!< ...when this one was acquired.
    ThreadId tid = 0;
    Pc held_pc = kInvalidPc;     //!< Acquire site of the held lock.
    Pc acquired_pc = kInvalidPc; //!< Acquire site of the new lock.
    SeqNum held_seq = 0;
    SeqNum acquired_seq = 0;
    std::uint64_t count = 0; //!< Dynamic occurrences of the edge.
};

/** Incremental lock-order detector (one instance per event stream). */
class LockOrderDetector
{
  public:
    /** Consume one event in stream order. */
    void observe(const TraceEvent &event);

    /** Cycle detection over the accumulated graph. Idempotent. */
    AnalysisReport finish() const;

    /** All accumulated edges, keyed (held, acquired), sorted. */
    std::vector<LockOrderEdge> edges() const;

  private:
    struct HeldLock
    {
        Addr lock = 0;
        Pc pc = kInvalidPc;
        SeqNum seq = 0;
    };

    /** Per-thread stack of held locks (acquisition order). */
    std::unordered_map<ThreadId, std::vector<HeldLock>> held_;

    /** (held, acquired) -> first witness + count; ordered map so the
     *  adjacency derived from it is sorted for free. */
    std::map<std::pair<Addr, Addr>, LockOrderEdge> edges_;
};

/** Run the lock-order detector over a whole recorded trace. */
AnalysisReport detectLockOrderCycles(const Trace &trace);

} // namespace act

#endif // ACT_ANALYSIS_LOCK_ORDER_HH
