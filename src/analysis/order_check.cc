#include "analysis/order_check.hh"

#include <cstdio>
#include <map>

namespace act
{

namespace
{

/** Last writer of one address. */
struct Writer
{
    bool valid = false;
    ThreadId tid = 0;
    Pc pc = kInvalidPc;
    SeqNum seq = 0;
};

/** Walk @p trace calling @p raw(writer, load_event) per RAW pair. */
template <typename Fn>
void
forEachRaw(const Trace &trace, Fn &&raw)
{
    std::unordered_map<Addr, Writer> writers;
    for (const TraceEvent &event : trace.events()) {
        if (!event.isMemory() || event.stack)
            continue;
        if (event.kind == EventKind::kStore) {
            writers[event.addr] =
                {true, event.tid, event.pc, event.seq};
            continue;
        }
        const auto it = writers.find(event.addr);
        if (it != writers.end() && it->second.valid)
            raw(it->second, event);
    }
}

} // namespace

void
OrderInvariants::addPassingTrace(const Trace &trace)
{
    forEachRaw(trace, [this](const Writer &writer,
                             const TraceEvent &load) {
        if (writer.tid != load.tid)
            writers_[load.pc].insert(writer.pc);
    });
}

bool
OrderInvariants::allows(Pc store_pc, Pc load_pc) const
{
    const auto it = writers_.find(load_pc);
    return it != writers_.end() && it->second.count(store_pc) != 0;
}

bool
OrderInvariants::knowsLoad(Pc load_pc) const
{
    return writers_.count(load_pc) != 0;
}

AnalysisReport
checkOrderViolations(const Trace &trace,
                     const OrderInvariants *invariants)
{
    AnalysisReport report;
    report.events_analyzed = trace.size();

    if (invariants != nullptr) {
        // Mined mode: flag every inter-thread RAW pair the passing
        // runs never produced. Intra-thread dependences are ordered by
        // program order and never checked, which is what keeps
        // single-threaded (sequential-bug) traces clean by
        // construction.
        forEachRaw(trace, [&](const Writer &writer,
                              const TraceEvent &load) {
            if (writer.tid == load.tid)
                return;
            if (invariants->allows(writer.pc, load.pc))
                return;
            AnalysisFinding finding;
            finding.detector = DetectorKind::kOrder;
            finding.code = invariants->knowsLoad(load.pc)
                               ? "untrained-writer"
                               : "untrained-communication";
            finding.pcs = {writer.pc, load.pc};
            finding.witness_seqs = {writer.seq, load.seq};
            finding.witness_tids = {writer.tid, load.tid};
            finding.addr = load.addr;
            char buf[112];
            std::snprintf(buf, sizeof(buf),
                          "load reads 0x%llx from a remote store no "
                          "passing run ever supplied",
                          static_cast<unsigned long long>(load.addr));
            finding.message = buf;
            report.add(std::move(finding));
        });
        return report;
    }

    // Single-trace mode: use-before-init. Pass 1 collects the first
    // write per address; pass 2 walks the events in trace order and
    // flags loads that precede it when the eventual writer is another
    // thread.
    std::unordered_map<Addr, Writer> first_write;
    for (const TraceEvent &event : trace.events()) {
        if (event.kind != EventKind::kStore || event.stack)
            continue;
        first_write.try_emplace(
            event.addr,
            Writer{true, event.tid, event.pc, event.seq});
    }
    for (const TraceEvent &event : trace.events()) {
        if (event.kind != EventKind::kLoad || event.stack)
            continue;
        const auto it = first_write.find(event.addr);
        if (it == first_write.end())
            continue; // Never written: input data, not an ordering bug.
        const Writer &writer = it->second;
        if (writer.seq < event.seq || writer.tid == event.tid)
            continue;
        AnalysisFinding finding;
        finding.detector = DetectorKind::kOrder;
        finding.code = "use-before-init";
        finding.pcs = {writer.pc, event.pc};
        finding.witness_seqs = {writer.seq, event.seq};
        finding.witness_tids = {writer.tid, event.tid};
        finding.addr = event.addr;
        char buf[112];
        std::snprintf(buf, sizeof(buf),
                      "load of 0x%llx before another thread's "
                      "initialising store",
                      static_cast<unsigned long long>(event.addr));
        finding.message = buf;
        report.add(std::move(finding));
    }
    return report;
}

} // namespace act
