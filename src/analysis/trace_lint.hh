/**
 * @file
 * Well-formedness linter for execution traces.
 *
 * Every consumer in the pipeline — the dependence tracker, the cycle
 * simulator, the baselines, the campaign cache — assumes structural
 * invariants the workload models maintain by construction: dense
 * monotone sequence numbers, balanced lock/unlock per thread, threads
 * that run only between their create and exit markers, flags used only
 * on the event kinds that define them, and summary counters that match
 * the event stream. A cached `.trc` file (or a hand-built trace in a
 * test) can violate any of these without failing `readTrace`, so the
 * linter makes the contract machine-checked: the trace cache lints
 * every disk hit and treats failures like corruption, and `actlint`
 * applies the same pass to trace files and campaign report dirs.
 *
 * Crash traces are legal: a failing execution may end without
 * kThreadExit markers (and with locks still held at the abrupt end of
 * the trace); the lock-balance and exit rules therefore only fire at
 * explicit exit events, never at end-of-trace.
 */

#ifndef ACT_ANALYSIS_TRACE_LINT_HH
#define ACT_ANALYSIS_TRACE_LINT_HH

#include <span>
#include <vector>

#include "analysis/finding.hh"
#include "trace/trace.hh"

namespace act
{

/** Lint knobs. */
struct TraceLintOptions
{
    /** Stop after this many findings (a corrupt file repeats itself). */
    std::size_t max_findings = 64;
};

/**
 * Check @p trace against the well-formedness rules. Returns the
 * findings, empty when the trace is clean. Rule codes:
 *
 *  - "seq-monotone":   event seq numbers are not the dense 0..n-1 run
 *                      Trace::append assigns;
 *  - "kind-range":     event kind outside the EventKind enum;
 *  - "size-range":     memory access size not a power of two in 1..64;
 *  - "flag-taken":     taken flag on a non-branch event;
 *  - "flag-stack":     stack flag on a non-memory event;
 *  - "lock-balance":   unlock without a matching acquire, or a second
 *                      acquire of a lock the thread already holds;
 *  - "exit-holding-lock": thread exits while holding locks;
 *  - "event-after-exit":  events from a thread after its exit marker;
 *  - "create-before-run": a non-root thread runs before any
 *                      kThreadCreate names it;
 *  - "create-invalid": create of self, of an already-created or
 *                      already-running thread, or a child id that does
 *                      not fit ThreadId;
 *  - "counter-mismatch": Trace summary counters (loads, stores,
 *                      branches, instructions) disagree with the
 *                      event stream;
 *  - "too-many-findings": lint stopped early (warning).
 */
std::vector<Finding> lintTrace(const Trace &trace,
                               const TraceLintOptions &options = {});

/** Knobs of the streaming-batch linter. */
struct BatchLintOptions
{
    /** Stop after this many findings. */
    std::size_t max_findings = 64;

    /** Reject tids >= this bound; 0 disables the check. */
    std::uint32_t max_threads = 0;
};

/**
 * Streaming variant of the well-formedness pass for in-memory event
 * batches (the fleet ingest path and `actlint stream`). A batch is an
 * arbitrary slice of one client's stream, so the whole-trace rules
 * (dense 0..n-1 seq run, lock balance, lifecycle) do not apply; what
 * must hold for *any* slice is checked instead:
 *
 *  - "seq-monotone": per-tid sequence numbers strictly increase
 *    within the batch (an out-of-order or duplicated event would
 *    corrupt per-client dependence state downstream);
 *  - "kind-range":   event kind inside the EventKind enum;
 *  - "tid-range":    tid under options.max_threads (when bounded);
 *  - "size-range":   memory access size a power of two in 1..64;
 *  - "flag-taken" / "flag-stack": flags only on defining kinds.
 *
 * Pass name is "batch-lint"; seq fields anchor to the index *within
 * the batch*.
 */
std::vector<Finding> lintEventBatch(std::span<const TraceEvent> batch,
                                    const BatchLintOptions &options = {});

} // namespace act

#endif // ACT_ANALYSIS_TRACE_LINT_HH
