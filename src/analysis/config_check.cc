#include "analysis/config_check.hh"

#include "act/weight_store.hh"

namespace act
{

std::vector<Finding>
validateWeightStore(const WeightStore &store)
{
    std::vector<Finding> findings;
    const Topology &topology = store.topology();
    if (!topology.valid()) {
        findings.push_back(makeFinding(
            "weights", "topology", Severity::kError,
            "store topology " + std::to_string(topology.inputs) + "x" +
                std::to_string(topology.hidden) + " outside [1, " +
                std::to_string(kMaxFanIn) + "]^2"));
    }
    for (const ThreadId tid : store.tids()) {
        const auto weights = store.get(tid);
        if (!weights)
            continue;
        const auto set_findings = validateWeights(
            topology, *weights, "tid " + std::to_string(tid));
        findings.insert(findings.end(), set_findings.begin(),
                        set_findings.end());
    }
    return findings;
}

} // namespace act
