#include "analysis/config_check.hh"

#include <algorithm>
#include <unordered_map>

#include "act/weight_store.hh"

namespace act
{

std::vector<Finding>
validateWeightStore(const WeightStore &store)
{
    std::vector<Finding> findings;
    const Topology &topology = store.topology();
    if (!topology.valid()) {
        findings.push_back(makeFinding(
            "weights", "topology", Severity::kError,
            "store topology " + std::to_string(topology.inputs) + "x" +
                std::to_string(topology.hidden) + " outside [1, " +
                std::to_string(kMaxFanIn) + "]^2"));
    }
    for (const ThreadId tid : store.tids()) {
        const auto weights = store.get(tid);
        if (!weights)
            continue;
        const auto set_findings = validateWeights(
            topology, *weights, "tid " + std::to_string(tid));
        findings.insert(findings.end(), set_findings.begin(),
                        set_findings.end());
    }
    return findings;
}

std::vector<Finding>
validateWeightStoreEnsemble(const WeightStore &store)
{
    std::vector<Finding> findings = validateWeightStore(store);
    const Topology &topology = store.topology();

    // Group the extra member sets by thread so gaps are detectable.
    std::unordered_map<ThreadId, std::size_t> max_member;
    std::unordered_map<ThreadId, std::size_t> member_sets;
    for (const std::uint64_t id : store.memberIds()) {
        const auto tid = static_cast<ThreadId>(id & 0xffffffffu);
        const auto member = static_cast<std::size_t>(id >> 32);
        max_member[tid] = std::max(max_member[tid], member);
        ++member_sets[tid];
        const std::string label =
            "tid " + std::to_string(tid) + " member " +
            std::to_string(member);
        if (!store.has(tid)) {
            findings.push_back(makeFinding(
                "weights", "ensemble-orphan", Severity::kError,
                label + " stored without a member-0 set for the thread"));
        }
        const auto weights = store.getMember(tid, member);
        if (!weights)
            continue;
        const auto set_findings =
            validateWeightsStrict(topology, *weights, label);
        findings.insert(findings.end(), set_findings.begin(),
                        set_findings.end());
    }
    for (const auto &[tid, highest] : max_member) {
        if (member_sets.at(tid) != highest) {
            findings.push_back(makeFinding(
                "weights", "ensemble-gap", Severity::kError,
                "tid " + std::to_string(tid) +
                    ": member indices are not contiguous (highest " +
                    std::to_string(highest) + ", " +
                    std::to_string(member_sets.at(tid)) +
                    " extra sets stored)"));
        }
    }
    return findings;
}

} // namespace act
