#include "analysis/pipeline.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <unordered_set>

#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"

namespace act
{

namespace
{

/** Registry handles (stable: detector output is a pure function of the
 *  trace set analysed, independent of thread count). */
struct AnalysisMetrics
{
    telemetry::Counter runs;
    telemetry::Counter events;
    telemetry::Counter findings;
    telemetry::Counter racy_pairs;

    static const AnalysisMetrics &
    get()
    {
        static const AnalysisMetrics metrics = [] {
            auto &reg = telemetry::MetricsRegistry::global();
            const auto kStable = telemetry::Stability::kStable;
            AnalysisMetrics m;
            m.runs = reg.counter("analysis.runs", kStable);
            m.events = reg.counter("analysis.events", kStable);
            m.findings = reg.counter("analysis.findings", kStable);
            m.racy_pairs = reg.counter("analysis.racy_pairs", kStable);
            return m;
        }();
        return metrics;
    }
};

std::uint64_t
pairKey(Pc store_pc, Pc load_pc)
{
    return hash3(store_pc, load_pc, 0x9a12);
}

} // namespace

std::string
PipelineResult::toText() const
{
    std::string out;
    char buf[96];
    const DetectorKind kinds[] = {
        DetectorKind::kLockset, DetectorKind::kLockOrder,
        DetectorKind::kAtomicity, DetectorKind::kOrder};
    for (const DetectorKind kind : kinds) {
        std::snprintf(buf, sizeof(buf), "%-10s %zu finding(s)\n",
                      detectorName(kind), report.countFor(kind));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%-10s %zu racy pair(s)\n", "hb",
                  races.races().size());
    out += buf;
    for (const AnalysisFinding &finding : report.ranked()) {
        out += "  ";
        out += finding.toString();
        out += '\n';
    }
    for (const Race &race : races.races()) {
        out += "  hb/";
        out += race.toString();
        out += '\n';
    }
    return out;
}

PipelineResult
runAnalysisPipeline(const Trace &trace, const PipelineOptions &options)
{
    const auto start = std::chrono::steady_clock::now();
    telemetry::ScopedSpan span("analysis.pipeline", "analysis");
    PipelineResult result;

    const AtomicityBaseline *atomicity_baseline =
        options.baselines != nullptr ? &options.baselines->atomicity
                                     : nullptr;
    const OrderInvariants *order_invariants =
        options.baselines != nullptr ? &options.baselines->order
                                     : nullptr;

    // Every detector writes its own pre-assigned slot; the merge below
    // runs in fixed order, so the result cannot depend on scheduling.
    AnalysisReport slots[kDetectorCount];
    std::vector<std::function<void()>> tasks;
    if (options.lockset) {
        tasks.push_back(
            [&] { slots[0] = detectLocksetRaces(trace); });
    }
    if (options.lock_order) {
        tasks.push_back(
            [&] { slots[1] = detectLockOrderCycles(trace); });
    }
    if (options.atomicity) {
        tasks.push_back([&] {
            slots[2] =
                detectAtomicityViolations(trace, atomicity_baseline);
        });
    }
    if (options.order) {
        tasks.push_back([&] {
            slots[3] = checkOrderViolations(trace, order_invariants);
        });
    }
    if (options.hb_races)
        tasks.push_back([&] { result.races = detectRaces(trace); });

    const unsigned workers =
        std::min<unsigned>(options.jobs > 0 ? options.jobs : 1,
                           static_cast<unsigned>(tasks.size()));
    if (workers <= 1) {
        for (const auto &task : tasks)
            task();
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            threads.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < tasks.size(); i = next.fetch_add(1)) {
                    tasks[i]();
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }

    for (AnalysisReport &slot : slots)
        result.report.merge(slot);

    const AnalysisMetrics &m = AnalysisMetrics::get();
    m.runs.inc();
    m.events.add(result.report.events_analyzed);
    m.findings.add(result.report.size());
    m.racy_pairs.add(result.races.races().size());

    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

EnsembleScore
scoreEnsemble(const PipelineResult &result,
              const std::vector<RawDependence> &predictions)
{
    // Dedup to distinct inter-thread static pairs, preserving order.
    std::vector<std::pair<Pc, Pc>> pairs;
    std::unordered_set<std::uint64_t> seen;
    for (const RawDependence &dep : predictions) {
        if (!dep.inter_thread)
            continue;
        if (seen.insert(pairKey(dep.store_pc, dep.load_pc)).second)
            pairs.emplace_back(dep.store_pc, dep.load_pc);
    }

    const auto pairPredicted = [&seen](Pc a, Pc b) {
        return seen.count(pairKey(a, b)) != 0 ||
               seen.count(pairKey(b, a)) != 0;
    };

    EnsembleScore score;
    const DetectorKind kinds[] = {
        DetectorKind::kLockset, DetectorKind::kLockOrder,
        DetectorKind::kAtomicity, DetectorKind::kOrder};

    for (const DetectorKind kind : kinds) {
        OracleScore lens;
        for (const auto &[store_pc, load_pc] : pairs) {
            ++lens.considered;
            if (result.report.matchesPair(kind, store_pc, load_pc))
                ++lens.true_positives;
            else
                ++lens.false_positives;
        }
        for (const AnalysisFinding &finding :
             result.report.findings()) {
            if (finding.detector != kind)
                continue;
            bool matched = false;
            for (const auto &[store_pc, load_pc] : pairs) {
                if (finding.coversPair(store_pc, load_pc)) {
                    matched = true;
                    break;
                }
            }
            if (!matched)
                ++lens.false_negatives;
        }
        score.per_detector[detectorName(kind)] = lens;
    }

    {
        OracleScore hb;
        for (const auto &[store_pc, load_pc] : pairs) {
            ++hb.considered;
            if (result.races.isRacyPair(store_pc, load_pc))
                ++hb.true_positives;
            else
                ++hb.false_positives;
        }
        for (const Race &race : result.races.rawRaces()) {
            if (!pairPredicted(race.prior_pc, race.later_pc))
                ++hb.false_negatives;
        }
        score.per_detector["hb"] = hb;
    }

    for (const auto &[store_pc, load_pc] : pairs) {
        ++score.fused.considered;
        if (result.report.matchesPairAny(store_pc, load_pc) ||
            result.races.isRacyPair(store_pc, load_pc)) {
            ++score.fused.true_positives;
        } else {
            ++score.fused.false_positives;
        }
    }
    // Fused misses: ground-truth items (any lens) nothing predicted.
    for (const AnalysisFinding &finding : result.report.findings()) {
        bool matched = false;
        for (const auto &[store_pc, load_pc] : pairs) {
            if (finding.coversPair(store_pc, load_pc)) {
                matched = true;
                break;
            }
        }
        if (!matched)
            ++score.fused.false_negatives;
    }
    for (const Race &race : result.races.rawRaces()) {
        if (!pairPredicted(race.prior_pc, race.later_pc))
            ++score.fused.false_negatives;
    }
    return score;
}

} // namespace act
