/**
 * @file
 * Vector clocks over deterministic thread ids.
 *
 * The race oracle derives happens-before ground truth from recorded
 * traces (program order + lock release/acquire + thread creation), and
 * vector clocks are its partial-order representation: component t of a
 * clock counts the synchronisation epochs of thread t that the owner
 * has (transitively) observed. Thread ids in this codebase are small
 * and dense (Section IV-C derives them from spawn order), so a plain
 * dense vector indexed by tid is both the simplest and the fastest
 * encoding.
 */

#ifndef ACT_ANALYSIS_VECTOR_CLOCK_HH
#define ACT_ANALYSIS_VECTOR_CLOCK_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace act
{

/** One vector timestamp; components default to zero. */
class VectorClock
{
  public:
    VectorClock() = default;

    /** Component for @p tid (zero when never touched). */
    std::uint64_t
    get(ThreadId tid) const
    {
        return tid < clocks_.size() ? clocks_[tid] : 0;
    }

    /** Set component @p tid to @p value (grows the vector). */
    void
    set(ThreadId tid, std::uint64_t value)
    {
        grow(tid);
        clocks_[tid] = value;
    }

    /** Increment component @p tid (a new epoch of that thread). */
    std::uint64_t
    tick(ThreadId tid)
    {
        grow(tid);
        return ++clocks_[tid];
    }

    /** Component-wise maximum (join) with @p other. */
    void
    merge(const VectorClock &other)
    {
        if (other.clocks_.size() > clocks_.size())
            clocks_.resize(other.clocks_.size(), 0);
        for (std::size_t i = 0; i < other.clocks_.size(); ++i)
            clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }

    /**
     * True when this clock is componentwise <= @p other: everything
     * the owner had seen, the other clock's owner has seen too.
     */
    bool
    leq(const VectorClock &other) const
    {
        for (std::size_t i = 0; i < clocks_.size(); ++i) {
            if (clocks_[i] > other.get(static_cast<ThreadId>(i)))
                return false;
        }
        return true;
    }

    bool operator==(const VectorClock &) const = default;

    /** Render e.g. "[2,0,1]" for debugging. */
    std::string
    toString() const
    {
        std::string out = "[";
        for (std::size_t i = 0; i < clocks_.size(); ++i) {
            if (i > 0)
                out += ',';
            out += std::to_string(clocks_[i]);
        }
        out += ']';
        return out;
    }

  private:
    void
    grow(ThreadId tid)
    {
        if (tid >= clocks_.size())
            clocks_.resize(static_cast<std::size_t>(tid) + 1, 0);
    }

    std::vector<std::uint64_t> clocks_;
};

} // namespace act

#endif // ACT_ANALYSIS_VECTOR_CLOCK_HH
