#include "analysis/detector.hh"

#include <cstdio>
#include <sstream>

namespace act
{

const char *
detectorName(DetectorKind kind)
{
    switch (kind) {
      case DetectorKind::kLockset: return "lockset";
      case DetectorKind::kLockOrder: return "lock-order";
      case DetectorKind::kAtomicity: return "atomicity";
      case DetectorKind::kOrder: return "order";
    }
    return "unknown";
}

std::string
AnalysisFinding::toString() const
{
    std::ostringstream out;
    out << detectorName(detector) << "/" << code << " ";
    for (std::size_t i = 0; i < pcs.size(); ++i) {
        if (i != 0)
            out << " -> ";
        char buf[48];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(pcs[i]));
        out << buf;
        if (i < witness_tids.size())
            out << " (t" << witness_tids[i] << ")";
    }
    {
        char buf[96];
        std::snprintf(buf, sizeof(buf), " on 0x%llx (%llu instance%s)",
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(count),
                      count == 1 ? "" : "s");
        out << buf;
    }
    if (!message.empty())
        out << ": " << message;
    return out.str();
}

Finding
AnalysisFinding::toFinding() const
{
    return makeFinding(detectorName(detector), code, Severity::kWarning,
                       toString(),
                       witness_seqs.empty() ? Finding::kNoSeq
                                            : witness_seqs.front());
}

void
AnalysisReport::add(AnalysisFinding finding)
{
    if (finding.count == 0)
        finding.count = 1;
    const std::uint64_t key = finding.key();
    const auto it = index_.find(key);
    if (it != index_.end()) {
        findings_[it->second].count += finding.count;
        return;
    }
    index_.emplace(key, findings_.size());
    findings_.push_back(std::move(finding));
}

void
AnalysisReport::merge(const AnalysisReport &other)
{
    for (const AnalysisFinding &finding : other.findings_)
        add(finding);
    events_analyzed += other.events_analyzed;
}

std::vector<AnalysisFinding>
AnalysisReport::ranked() const
{
    std::vector<AnalysisFinding> sorted = findings_;
    std::sort(sorted.begin(), sorted.end(),
              [](const AnalysisFinding &a, const AnalysisFinding &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.detector != b.detector)
                      return a.detector < b.detector;
                  if (a.code != b.code)
                      return a.code < b.code;
                  return a.pcs < b.pcs;
              });
    return sorted;
}

std::size_t
AnalysisReport::countFor(DetectorKind detector) const
{
    std::size_t n = 0;
    for (const AnalysisFinding &finding : findings_) {
        if (finding.detector == detector)
            ++n;
    }
    return n;
}

bool
AnalysisReport::matchesPair(DetectorKind detector, Pc store_pc,
                            Pc load_pc) const
{
    for (const AnalysisFinding &finding : findings_) {
        if (finding.detector == detector &&
            finding.coversPair(store_pc, load_pc)) {
            return true;
        }
    }
    return false;
}

bool
AnalysisReport::matchesPairAny(Pc store_pc, Pc load_pc) const
{
    for (const AnalysisFinding &finding : findings_) {
        if (finding.coversPair(store_pc, load_pc))
            return true;
    }
    return false;
}

std::string
AnalysisReport::toText() const
{
    std::string out;
    for (const AnalysisFinding &finding : ranked()) {
        out += finding.toString();
        out += '\n';
    }
    return out;
}

std::vector<Finding>
AnalysisReport::toFindings() const
{
    std::vector<Finding> findings;
    findings.reserve(findings_.size());
    for (const AnalysisFinding &finding : ranked())
        findings.push_back(finding.toFinding());
    return findings;
}

} // namespace act
