/**
 * @file
 * Vector-clock happens-before race detector over recorded traces.
 *
 * ACT's neural network flags *anomalous* RAW-dependence sequences
 * (Sections III-V); whether a flagged dependence is also a data race
 * is a separate, exactly decidable question. This pass derives the
 * happens-before relation of a trace from its synchronisation events
 * (kLock/kUnlock release-acquire pairs, kThreadCreate edges, program
 * order) and labels every conflicting access pair as ordered or racy,
 * giving the Table IV/V/VI benches and the diagnosis tests an
 * independent ground-truth oracle to score ACT's predictions against:
 * the concurrency bugs of `src/workloads/bugs.hh` must show a race on
 * their failure path, the sequential/semantic bugs must show none.
 */

#ifndef ACT_ANALYSIS_RACE_ORACLE_HH
#define ACT_ANALYSIS_RACE_ORACLE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "deps/raw_dependence.hh"
#include "trace/trace.hh"

namespace act
{

/** Direction of a conflicting, unordered access pair. */
enum class RaceKind : std::uint8_t
{
    kWriteWrite, //!< Two unordered stores.
    kWriteRead,  //!< Store then load (the RAW-dependence direction).
    kReadWrite   //!< Load then store.
};

const char *raceKindName(RaceKind kind);

/** One racy static access pair (dynamic instances are deduplicated). */
struct Race
{
    RaceKind kind = RaceKind::kWriteRead;
    Pc prior_pc = kInvalidPc;  //!< Earlier access in trace order.
    Pc later_pc = kInvalidPc;  //!< Later access in trace order.

    /** First dynamic instance, for reporting. */
    Addr addr = 0;
    ThreadId prior_tid = 0;
    ThreadId later_tid = 0;
    SeqNum prior_seq = 0;
    SeqNum later_seq = 0;

    /** Dynamic occurrences of this static pair. */
    std::uint64_t count = 0;

    std::string toString() const;
};

/**
 * Precision/recall of a prediction set against an oracle.
 *
 * Edge-case conventions (explicit, not divide-by-zero accidents):
 *
 *  - empty prediction set (considered == 0): precision is vacuously
 *    1.0 — no prediction was wrong. Recall stays governed by the
 *    ground truth: 0.0 when races were there to find, 1.0 when the
 *    ground truth is empty too (nothing to find, nothing missed);
 *  - empty ground truth (true_positives + false_negatives == 0):
 *    recall is vacuously 1.0;
 *  - duplicate predicted pairs: scorers deduplicate by static pair
 *    before counting, so a pair predicted twice is considered once.
 */
struct OracleScore
{
    std::size_t considered = 0;      //!< Inter-thread predictions scored.
    std::size_t true_positives = 0;  //!< Predicted pairs the oracle races.
    std::size_t false_positives = 0; //!< Predicted pairs the oracle orders.
    std::size_t false_negatives = 0; //!< Oracle RAW races never predicted.

    double
    precision() const
    {
        return considered == 0 ? 1.0
                               : static_cast<double>(true_positives) /
                                     static_cast<double>(considered);
    }

    double
    recall() const
    {
        const std::size_t racy = true_positives + false_negatives;
        return racy == 0 ? 1.0
                         : static_cast<double>(true_positives) /
                               static_cast<double>(racy);
    }
};

/** Everything the detector learned about one trace. */
class RaceReport
{
  public:
    /** All racy static pairs, in first-occurrence order. */
    const std::vector<Race> &races() const { return races_; }

    /** Racy pairs restricted to the store->load (RAW) direction. */
    std::vector<Race> rawRaces() const;

    bool empty() const { return races_.empty(); }

    /** Was this static store->load pair racy anywhere in the trace? */
    bool isRacyPair(Pc store_pc, Pc load_pc) const;

    /**
     * Oracle label for a RAW dependence: racy iff inter-thread and its
     * (store_pc, load_pc) pair raced. Intra-thread dependences are
     * ordered by definition.
     */
    bool isRacy(const RawDependence &dep) const;

    /**
     * Score a set of predicted root-cause dependences (e.g. the final
     * dependences of ACT's ranked Debug Buffer candidates): a predicted
     * inter-thread dependence is a true positive when the oracle saw a
     * store->load race on its pair. False negatives count the oracle's
     * RAW races the prediction set missed — the benign races the
     * workload models emit on purpose land there, so recall measures
     * "share of all races flagged", not diagnosis quality; precision
     * is the interesting direction (flagged dependences that are real
     * races).
     */
    OracleScore score(const std::vector<RawDependence> &predictions) const;

    // Detector-side counters.
    std::uint64_t memory_events = 0;
    std::uint64_t sync_events = 0;
    std::uint64_t checked_pairs = 0; //!< Conflicting pairs examined.
    std::uint64_t racy_instances = 0; //!< Dynamic races before dedup.

    /** Detector use only. */
    void addRace(Race race);

  private:
    static std::uint64_t pairKey(RaceKind kind, Pc prior, Pc later);

    std::vector<Race> races_;
    std::unordered_set<std::uint64_t> seen_;
};

/**
 * Run the vector-clock detector over @p trace.
 *
 * Happens-before edges: per-thread program order; kUnlock ->
 * next kLock of the same lock address (release/acquire); kThreadCreate
 * -> every event of the created thread. There is no join event in the
 * trace format, so a child's exit orders nothing after it — exactly
 * the information an online detector would have.
 *
 * Stack-flagged accesses are thread-private by construction and are
 * skipped (they can never conflict).
 */
RaceReport detectRaces(const Trace &trace);

} // namespace act

#endif // ACT_ANALYSIS_RACE_ORACLE_HH
