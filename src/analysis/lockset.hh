/**
 * @file
 * Eraser-style lockset race detector.
 *
 * A second, independent race lens alongside the vector-clock oracle:
 * instead of deriving happens-before, it checks the locking discipline
 * directly. Each shared location v carries a candidate lockset C(v) —
 * the intersection of the locks held at every access since v became
 * shared — and a state machine (Virgin -> Exclusive -> Shared ->
 * Shared-Modified) that postpones refinement and reporting until v is
 * genuinely shared and written, exactly as in Savage et al.'s Eraser.
 * An access in the Shared-Modified state with an empty C(v) is a
 * discipline violation; it is reported as the static pair (last write
 * PC, current access PC) so findings line up with the RAW-dependence
 * pairs ACT predicts and the bug catalog records.
 *
 * The detector is incremental — observe() consumes one event at a time
 * — so the same class serves the offline pipeline, `actlint analyze`
 * and the fleet service's per-block online mode.
 */

#ifndef ACT_ANALYSIS_LOCKSET_HH
#define ACT_ANALYSIS_LOCKSET_HH

#include <unordered_map>
#include <vector>

#include "analysis/detector.hh"
#include "trace/trace.hh"

namespace act
{

/** Eraser state of one shared location. */
enum class LocksetState : std::uint8_t
{
    kVirgin,        //!< Never accessed.
    kExclusive,     //!< Accessed by one thread only (no refinement).
    kShared,        //!< Read by multiple threads, never written since.
    kSharedModified //!< Written while shared: C(v) empty => report.
};

const char *locksetStateName(LocksetState state);

/** Incremental lockset detector (one instance per event stream). */
class LocksetDetector
{
  public:
    /** Consume one event in stream order. */
    void observe(const TraceEvent &event);

    const AnalysisReport &report() const { return report_; }
    AnalysisReport takeReport() { return std::move(report_); }

    // Introspection for property tests and diagnostics.

    /** State of @p addr (kVirgin when never seen). */
    LocksetState state(Addr addr) const;

    /** Candidate lockset C(addr), sorted; meaningless while kVirgin or
     *  kExclusive (refinement has not started). */
    std::vector<Addr> candidateLocks(Addr addr) const;

    /** Locks currently held by @p tid, sorted. */
    std::vector<Addr> heldLocks(ThreadId tid) const;

  private:
    struct VarState
    {
        LocksetState state = LocksetState::kVirgin;
        ThreadId owner = kInvalidThread; //!< kExclusive only.
        std::vector<Addr> lockset;       //!< Sorted C(v).
        bool lockset_started = false;    //!< First refinement done.

        Pc last_write_pc = kInvalidPc;
        ThreadId last_write_tid = kInvalidThread;
        SeqNum last_write_seq = 0;
    };

    void refine(VarState &var, const std::vector<Addr> &held);
    void reportViolation(const VarState &var, const TraceEvent &event);

    std::unordered_map<Addr, VarState> vars_;
    std::unordered_map<ThreadId, std::vector<Addr>> held_;
    AnalysisReport report_;
};

/** Run the lockset detector over a whole recorded trace. */
AnalysisReport detectLocksetRaces(const Trace &trace);

} // namespace act

#endif // ACT_ANALYSIS_LOCKSET_HH
