/**
 * @file
 * Static validation of ACT configurations and weight sets.
 *
 * The ACT Module used to enforce its construction-time contract with a
 * single assert (topology inputs = sequence length x encoder width);
 * everything else — buffer sizes, thresholds, hardware fan-in, weight
 * counts — failed late or silently. These validators turn the whole
 * contract into structured Findings so misconfigurations name the
 * offending knob and value: the module constructor reports every
 * violation before going fatal, and `actlint config` / `actlint
 * weights` run the same checks standalone.
 *
 * Header-only on purpose: the checks depend only on ActConfig /
 * Topology / plain weight vectors, so `act_act` can call them without
 * linking the analysis library (which itself links `act_act` for the
 * WeightStore-level pass in config_check.cc).
 */

#ifndef ACT_ANALYSIS_CONFIG_CHECK_HH
#define ACT_ANALYSIS_CONFIG_CHECK_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "act/act_config.hh"
#include "analysis/finding.hh"
#include "common/fixed_point.hh"
#include "nn/network.hh"

namespace act
{

/**
 * Largest weight magnitude the hardware weight registers can hold:
 * FixedPoint<16> stores Q15.16 in 32 bits, so anything at or beyond
 * |2^15| saturates when loaded via stwt and the software-trained value
 * is silently lost.
 */
inline constexpr double kHwWeightLimit =
    static_cast<double>(std::numeric_limits<std::int32_t>::max()) /
    HwFixed::kScale;

namespace detail
{

inline void
addConfigFinding(std::vector<Finding> &findings, const char *code,
                 std::string message)
{
    findings.push_back(makeFinding("config", code, Severity::kError,
                                   std::move(message)));
}

inline void
addConfigWarning(std::vector<Finding> &findings, const char *code,
                 std::string message)
{
    findings.push_back(makeFinding("config", code, Severity::kWarning,
                                   std::move(message)));
}

} // namespace detail

/**
 * Validate @p config for a module whose encoder emits
 * @p encoder_width values per dependence. Returns all violations
 * (empty = valid). Rule codes: "sequence-length", "topology",
 * "topology-mismatch", "fan-in", "input-buffer", "debug-buffer",
 * "threshold", "interval", "learning-rate", "fifo", "muladd", plus the
 * kWarning code "table3-divergence" when a buffer size departs from
 * the Table III defaults (legal — fig9 sweeps do it on purpose — but
 * worth flagging in a config under review).
 */
inline std::vector<Finding>
validateActConfig(const ActConfig &config, std::size_t encoder_width)
{
    std::vector<Finding> findings;
    const auto bad = [&findings](const char *code, std::string message) {
        detail::addConfigFinding(findings, code, std::move(message));
    };

    if (config.sequence_length < 1)
        bad("sequence-length", "sequence_length must be at least 1");
    if (!config.topology.valid()) {
        bad("topology",
            "topology " + std::to_string(config.topology.inputs) + "x" +
                std::to_string(config.topology.hidden) +
                " outside [1, " + std::to_string(kMaxFanIn) + "]^2");
    }
    if (encoder_width < 1) {
        bad("topology-mismatch", "encoder width must be at least 1");
    } else if (config.sequence_length >= 1 &&
               config.topology.inputs !=
                   config.sequence_length * encoder_width) {
        bad("topology-mismatch",
            "topology has " + std::to_string(config.topology.inputs) +
                " inputs but sequence_length " +
                std::to_string(config.sequence_length) + " x encoder width " +
                std::to_string(encoder_width) + " needs " +
                std::to_string(config.sequence_length * encoder_width));
    }
    if (config.topology.inputs > config.hw.neuron.max_inputs ||
        config.topology.hidden > config.hw.neuron.max_inputs) {
        bad("fan-in",
            "topology " + std::to_string(config.topology.inputs) + "x" +
                std::to_string(config.topology.hidden) +
                " exceeds hardware fan-in M=" +
                std::to_string(config.hw.neuron.max_inputs));
    }
    if (config.input_buffer_entries < config.sequence_length ||
        config.input_buffer_entries < 1) {
        bad("input-buffer",
            "input_buffer_entries " +
                std::to_string(config.input_buffer_entries) +
                " cannot hold a sequence of " +
                std::to_string(config.sequence_length));
    }
    if (config.debug_buffer_entries < 1)
        bad("debug-buffer", "debug_buffer_entries must be at least 1");
    if (!(config.misprediction_threshold > 0.0) ||
        !(config.misprediction_threshold < 1.0)) {
        bad("threshold",
            "misprediction_threshold " +
                std::to_string(config.misprediction_threshold) +
                " outside (0, 1)");
    }
    if (config.interval_length < 1)
        bad("interval", "interval_length must be at least 1");
    if (!(config.learning_rate > 0.0) || !(config.learning_rate <= 1.0)) {
        bad("learning-rate",
            "learning_rate " + std::to_string(config.learning_rate) +
                " outside (0, 1]");
    }
    if (config.hw.fifo_entries < 1)
        bad("fifo", "hw.fifo_entries must be at least 1");
    if (config.hw.neuron.muladd_units < 1 ||
        config.hw.neuron.muladd_units > config.hw.neuron.max_inputs) {
        bad("muladd",
            "hw.neuron.muladd_units " +
                std::to_string(config.hw.neuron.muladd_units) +
                " outside [1, M=" +
                std::to_string(config.hw.neuron.max_inputs) + "]");
    }
    if (config.ensemble.members < 1)
        bad("ensemble", "ensemble.members must be at least 1");
    if (config.ensemble.members > 1 &&
        config.ensemble.members * config.topology.hidden >
            config.hw.neuron.max_inputs) {
        // The ensemble shares the single M-neuron hardware bank, so
        // members x hidden must fit inside it side by side.
        bad("ensemble-budget",
            std::to_string(config.ensemble.members) + " members x " +
                std::to_string(config.topology.hidden) +
                " hidden neurons exceed the hardware budget M=" +
                std::to_string(config.hw.neuron.max_inputs));
    }
    if (config.ensemble.quorum > config.ensemble.members) {
        bad("ensemble-quorum",
            "ensemble.quorum " + std::to_string(config.ensemble.quorum) +
                " exceeds the member count " +
                std::to_string(config.ensemble.members));
    }
    if (!(config.ensemble.health_beta > 0.0) ||
        !(config.ensemble.health_beta <= 1.0)) {
        bad("ensemble",
            "ensemble.health_beta " +
                std::to_string(config.ensemble.health_beta) +
                " outside (0, 1]");
    }
    if (config.controller.self_tuning) {
        if (!(config.controller.ewma_alpha > 0.0) ||
            !(config.controller.ewma_alpha <= 1.0)) {
            bad("controller",
                "controller.ewma_alpha " +
                    std::to_string(config.controller.ewma_alpha) +
                    " outside (0, 1]");
        }
        if (!(config.controller.enter_training >
              config.controller.exit_training) ||
            !(config.controller.exit_training >= 0.0)) {
            // The hysteresis band must be a real band: entering and
            // leaving training at the same rate reintroduces flapping.
            bad("controller",
                "controller thresholds must satisfy 0 <= exit_training (" +
                    std::to_string(config.controller.exit_training) +
                    ") < enter_training (" +
                    std::to_string(config.controller.enter_training) + ")");
        }
        if (config.controller.min_dwell_intervals < 1) {
            bad("controller",
                "controller.min_dwell_intervals must be at least 1");
        }
    }
    if (config.controller.dynamic_topology) {
        if (config.controller.min_hidden < 1)
            bad("controller", "controller.min_hidden must be at least 1");
        if (config.controller.grow_patience < 1 ||
            config.controller.shrink_patience < 1) {
            bad("controller",
                "controller grow/shrink patience must be at least 1");
        }
    }
    if (config.input_buffer_entries != kInputGeneratorBufferEntries &&
        config.input_buffer_entries >= config.sequence_length) {
        detail::addConfigWarning(
            findings, "table3-divergence",
            "input_buffer_entries " +
                std::to_string(config.input_buffer_entries) +
                " diverges from the Table III default of " +
                std::to_string(kInputGeneratorBufferEntries));
    }
    if (config.debug_buffer_entries != kDebugBufferEntries &&
        config.debug_buffer_entries >= 1) {
        detail::addConfigWarning(
            findings, "table3-divergence",
            "debug_buffer_entries " +
                std::to_string(config.debug_buffer_entries) +
                " diverges from the Table III default of " +
                std::to_string(kDebugBufferEntries));
    }
    return findings;
}

/**
 * Validate one flat weight vector against @p topology and the hardware
 * fixed-point range. Rule codes: "weight-count", "weight-value".
 * @p label names the set in messages (e.g. "tid 3").
 */
inline std::vector<Finding>
validateWeights(const Topology &topology, std::span<const double> weights,
                const std::string &label = "weights")
{
    std::vector<Finding> findings;
    const std::size_t expected =
        topology.hidden * (topology.inputs + 1) + (topology.hidden + 1);
    if (weights.size() != expected) {
        findings.push_back(makeFinding(
            "weights", "weight-count", Severity::kError,
            label + ": " + std::to_string(weights.size()) +
                " weights but topology " + std::to_string(topology.inputs) +
                "x" + std::to_string(topology.hidden) + " needs " +
                std::to_string(expected)));
        return findings;
    }
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i];
        if (!std::isfinite(w) || std::fabs(w) > kHwWeightLimit) {
            findings.push_back(makeFinding(
                "weights", "weight-value", Severity::kError,
                label + ": weight register " + std::to_string(i) +
                    " value " + std::to_string(w) +
                    " outside the Q15.16 range (|w| <= " +
                    std::to_string(kHwWeightLimit) + ")"));
        }
    }
    return findings;
}

/**
 * validateWeights plus lint-grade hygiene warnings that the hot path
 * deliberately ignores: "weight-denormal" (kWarning) for IEEE-754
 * subnormal values and for non-zero magnitudes below the Q15.16
 * quantum 2^-16, both of which quantise to zero in the hardware and
 * usually indicate a truncated or bit-damaged store. Infinities and
 * NaNs are already "weight-value" errors in the base check.
 */
inline std::vector<Finding>
validateWeightsStrict(const Topology &topology,
                      std::span<const double> weights,
                      const std::string &label = "weights")
{
    std::vector<Finding> findings = validateWeights(topology, weights, label);
    if (!clean(findings))
        return findings;
    constexpr double kQ16Quantum = 1.0 / 65536.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i];
        if (w != 0.0 &&
            (std::fpclassify(w) == FP_SUBNORMAL ||
             std::fabs(w) < kQ16Quantum)) {
            findings.push_back(makeFinding(
                "weights", "weight-denormal", Severity::kWarning,
                label + ": weight register " + std::to_string(i) +
                    " value " + std::to_string(w) +
                    " quantises to zero in Q15.16 (|w| < 2^-16)"));
        }
    }
    return findings;
}

class WeightStore;

/**
 * Validate every weight set in @p store against its topology and the
 * hardware fixed-point range (compiled in the analysis library; adds
 * "topology" / "weight-count" / "weight-value" findings labelled per
 * thread id).
 */
std::vector<Finding> validateWeightStore(const WeightStore &store);

/**
 * Ensemble-aware store audit (actlint weights --ensemble): everything
 * validateWeightStore checks plus, per stored ensemble member set,
 * strict value hygiene and cross-member consistency — a member entry
 * whose thread has no member-0 set ("ensemble-orphan", kError) or a
 * gap in the member indices for one thread ("ensemble-gap", kError)
 * means the store cannot initialise the ensemble it claims to hold.
 */
std::vector<Finding> validateWeightStoreEnsemble(const WeightStore &store);

} // namespace act

#endif // ACT_ANALYSIS_CONFIG_CHECK_HH
