/**
 * @file
 * Order-violation checker over mined communication invariants.
 *
 * Order violations (aget's early read of `bwritten`, pbzip2's
 * free-before-drain) are defined by which writer a read is *supposed*
 * to see, so the checker mines that expectation from passing runs: for
 * every load PC it records the set of inter-thread last-writer store
 * PCs observed across the passing traces (the load's first-access /
 * init-before-use invariant). A failing trace violates the invariant
 * when a load takes its value from a remote store PC outside the mined
 * set — in the bug catalog that is exactly the buggy dependence, and
 * single-threaded executions can never trip it (they form no
 * inter-thread dependences at all).
 *
 * Without mined invariants (a single unpaired trace), a weaker
 * intra-trace rule still applies: a read of a location before its first
 * write, where another thread writes the location later in the same
 * trace, is a use-before-init order violation.
 */

#ifndef ACT_ANALYSIS_ORDER_CHECK_HH
#define ACT_ANALYSIS_ORDER_CHECK_HH

#include <unordered_map>
#include <unordered_set>

#include "analysis/detector.hh"
#include "trace/trace.hh"

namespace act
{

/** Per-load-PC inter-thread last-writer sets mined from passing runs. */
class OrderInvariants
{
  public:
    /** Fold in the inter-thread RAW pairs of a passing trace. */
    void addPassingTrace(const Trace &trace);

    /** Was (store_pc -> load_pc) ever seen in a passing run? */
    bool allows(Pc store_pc, Pc load_pc) const;

    /** Did any passing run give @p load_pc an inter-thread writer? */
    bool knowsLoad(Pc load_pc) const;

    std::size_t size() const { return writers_.size(); }

  private:
    /** load PC -> set of permitted inter-thread store PCs. */
    std::unordered_map<Pc, std::unordered_set<Pc>> writers_;
};

/**
 * Check @p trace against @p invariants (mined mode), or apply the
 * intra-trace use-before-init rule when @p invariants is null.
 */
AnalysisReport checkOrderViolations(
    const Trace &trace, const OrderInvariants *invariants = nullptr);

} // namespace act

#endif // ACT_ANALYSIS_ORDER_CHECK_HH
