/**
 * @file
 * Structured diagnostics shared by every analysis pass.
 *
 * The trace linter, the race oracle and the config validator all
 * report through the same Finding record so that `actlint` (and the
 * library callers that embed a pass, e.g. the trace cache) can merge,
 * format and gate on results uniformly instead of each pass inventing
 * its own error side-channel.
 */

#ifndef ACT_ANALYSIS_FINDING_HH
#define ACT_ANALYSIS_FINDING_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace act
{

/** How bad a finding is. */
enum class Severity : std::uint8_t
{
    kWarning, //!< Suspicious, but the artifact is still usable.
    kError    //!< Invariant violated; the artifact must be rejected.
};

inline const char *
severityName(Severity severity)
{
    return severity == Severity::kError ? "error" : "warning";
}

/** One diagnostic produced by an analysis pass. */
struct Finding
{
    /** Pass that produced it ("trace-lint", "config", "weights"). */
    std::string pass;

    /** Stable machine-matchable rule code, e.g. "lock-balance". */
    std::string code;

    Severity severity = Severity::kError;

    /** Human-readable explanation with the offending values. */
    std::string message;

    /** Event index the finding anchors to (kNoSeq when not trace-tied). */
    SeqNum seq = kNoSeq;

    static constexpr SeqNum kNoSeq = ~SeqNum{0};

    std::string
    toString() const
    {
        std::ostringstream out;
        out << severityName(severity) << " [" << pass << "/" << code
            << "]";
        if (seq != kNoSeq)
            out << " @" << seq;
        out << ": " << message;
        return out.str();
    }
};

/** Number of error-severity findings in @p findings. */
inline std::size_t
errorCount(const std::vector<Finding> &findings)
{
    std::size_t errors = 0;
    for (const Finding &finding : findings) {
        if (finding.severity == Severity::kError)
            ++errors;
    }
    return errors;
}

/** True when @p findings contains no errors (warnings are tolerated). */
inline bool
clean(const std::vector<Finding> &findings)
{
    return errorCount(findings) == 0;
}

/** One finding per line, for fatal messages and CLI output. */
inline std::string
formatFindings(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &finding : findings) {
        out += finding.toString();
        out += '\n';
    }
    return out;
}

/** Convenience builder used by the passes. */
inline Finding
makeFinding(std::string pass, std::string code, Severity severity,
            std::string message, SeqNum seq = Finding::kNoSeq)
{
    Finding finding;
    finding.pass = std::move(pass);
    finding.code = std::move(code);
    finding.severity = severity;
    finding.message = std::move(message);
    finding.seq = seq;
    return finding;
}

} // namespace act

#endif // ACT_ANALYSIS_FINDING_HH
