/**
 * @file
 * AVIO-style atomicity-violation detector.
 *
 * For two consecutive accesses p (preceding) and c (current) by one
 * thread to the same address, every remote access r that interleaved
 * between them forms a triple (p, r, c). Four of the eight kind
 * combinations are unserializable — no serial order of the two threads
 * produces the same reads-from relation (Lu et al., AVIO):
 *
 *     p=R r=W c=R   the two local reads see different values
 *     p=W r=W c=R   the local read sees the remote, not its own, write
 *     p=R r=W c=W   the remote write is lost
 *     p=W r=R c=W   the remote read sees a half-done update
 *
 * Unserializable interleavings are common in correct executions (a
 * lock-protected counter updated by two threads produces W-W-R every
 * time the lock changes hands), so raw detection over one trace is
 * noisy by design. The pipeline therefore *mines* the static triples
 * that appear in passing runs as an invariant baseline and reports only
 * the triples unique to the failing run — AVIO's extraction phase.
 */

#ifndef ACT_ANALYSIS_ATOMICITY_HH
#define ACT_ANALYSIS_ATOMICITY_HH

#include <unordered_map>
#include <unordered_set>

#include "analysis/detector.hh"
#include "trace/trace.hh"

namespace act
{

/** Static unserializable triples observed in passing executions. */
class AtomicityBaseline
{
  public:
    /** Fold in every unserializable static triple of @p trace. */
    void addPassingTrace(const Trace &trace);

    bool contains(std::uint64_t triple_key) const
    {
        return triples_.count(triple_key) != 0;
    }

    std::size_t size() const { return triples_.size(); }

  private:
    std::unordered_set<std::uint64_t> triples_;
};

/** Incremental atomicity detector (one instance per event stream). */
class AtomicityDetector
{
  public:
    /** Detection mode; @p baseline may be null (report every triple). */
    explicit AtomicityDetector(const AtomicityBaseline *baseline =
                                   nullptr)
        : baseline_(baseline)
    {}

    /** Consume one event in stream order. */
    void observe(const TraceEvent &event);

    const AnalysisReport &report() const { return report_; }
    AnalysisReport takeReport() { return std::move(report_); }

    /** Static keys of every unserializable triple seen (mining). */
    const std::unordered_set<std::uint64_t> &tripleKeys() const
    {
        return triples_;
    }

    /** Stable key of a static triple (PCs + kind pattern). */
    static std::uint64_t tripleKey(Pc p_pc, Pc r_pc, Pc c_pc,
                                   bool p_store, bool r_store,
                                   bool c_store);

  private:
    /** One static remote access inside a local window. */
    struct RemoteAccess
    {
        Pc pc = kInvalidPc;
        bool is_store = false;
        SeqNum seq = 0;     //!< First dynamic instance in this window.
        ThreadId tid = 0;
    };

    /** Last local access by one thread, plus the interleaved remotes. */
    struct LocalWindow
    {
        bool valid = false;
        Pc pc = kInvalidPc;
        bool is_store = false;
        SeqNum seq = 0;
        std::vector<RemoteAccess> remotes; //!< Deduped by (pc, kind).
    };

    std::unordered_map<Addr,
                       std::unordered_map<ThreadId, LocalWindow>>
        state_;
    const AtomicityBaseline *baseline_;
    std::unordered_set<std::uint64_t> triples_;
    AnalysisReport report_;
};

/**
 * Run the atomicity detector over a whole recorded trace; findings are
 * the unserializable triples absent from @p baseline (all of them when
 * @p baseline is null).
 */
AnalysisReport detectAtomicityViolations(
    const Trace &trace, const AtomicityBaseline *baseline = nullptr);

} // namespace act

#endif // ACT_ANALYSIS_ATOMICITY_HH
