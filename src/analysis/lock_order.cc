#include "analysis/lock_order.hh"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <set>

namespace act
{

namespace
{

/** Rotate @p cycle so the smallest lock address leads. */
std::vector<Addr>
canonicalCycle(std::vector<Addr> cycle)
{
    const auto smallest =
        std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), smallest, cycle.end());
    return cycle;
}

} // namespace

void
LockOrderDetector::observe(const TraceEvent &event)
{
    switch (event.kind) {
      case EventKind::kLock: {
        std::vector<HeldLock> &stack = held_[event.tid];
        for (const HeldLock &held : stack) {
            if (held.lock == event.addr)
                continue; // Relock; the trace linter owns that rule.
            LockOrderEdge edge;
            edge.held = held.lock;
            edge.acquired = event.addr;
            edge.tid = event.tid;
            edge.held_pc = held.pc;
            edge.acquired_pc = event.pc;
            edge.held_seq = held.seq;
            edge.acquired_seq = event.seq;
            edge.count = 0;
            auto [it, inserted] = edges_.try_emplace(
                std::make_pair(held.lock, event.addr), edge);
            ++it->second.count;
        }
        stack.push_back({event.addr, event.pc, event.seq});
        break;
      }
      case EventKind::kUnlock: {
        std::vector<HeldLock> &stack = held_[event.tid];
        // Unlock need not be LIFO: erase the matching entry, newest
        // first.
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->lock == event.addr) {
                stack.erase(std::next(it).base());
                break;
            }
        }
        break;
      }
      default:
        break;
    }
}

AnalysisReport
LockOrderDetector::finish() const
{
    AnalysisReport report;

    // Sorted adjacency (edges_ is an ordered map), so the DFS below is
    // a pure function of the edge set.
    std::map<Addr, std::vector<Addr>> successors;
    for (const auto &[key, edge] : edges_)
        successors[key.first].push_back(key.second);

    enum class Color : std::uint8_t { kWhite, kOnPath, kDone };
    std::map<Addr, Color> color;
    for (const auto &[node, next] : successors) {
        color.try_emplace(node, Color::kWhite);
        for (const Addr succ : next)
            color.try_emplace(succ, Color::kWhite);
    }

    std::set<std::vector<Addr>> seen_cycles;
    std::vector<Addr> path;

    const std::function<void(Addr)> visit = [&](Addr node) {
        color[node] = Color::kOnPath;
        path.push_back(node);
        const auto it = successors.find(node);
        if (it != successors.end()) {
            for (const Addr succ : it->second) {
                if (color[succ] == Color::kOnPath) {
                    // Back edge: the path from succ to node closes a
                    // cycle succ -> ... -> node -> succ.
                    const auto start = std::find(path.begin(),
                                                 path.end(), succ);
                    seen_cycles.insert(canonicalCycle(
                        std::vector<Addr>(start, path.end())));
                } else if (color[succ] == Color::kWhite) {
                    visit(succ);
                }
            }
        }
        path.pop_back();
        color[node] = Color::kDone;
    };
    for (const auto &[node, next] : successors) {
        if (color[node] == Color::kWhite)
            visit(node);
    }

    for (const std::vector<Addr> &cycle : seen_cycles) {
        AnalysisFinding finding;
        finding.detector = DetectorKind::kLockOrder;
        finding.code = "lock-cycle";
        finding.addr = cycle.front();
        std::string locks;
        std::uint64_t instances = 0;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            const Addr from = cycle[i];
            const Addr to = cycle[(i + 1) % cycle.size()];
            const auto edge = edges_.find(std::make_pair(from, to));
            if (edge != edges_.end()) {
                finding.pcs.push_back(edge->second.acquired_pc);
                finding.witness_seqs.push_back(
                    edge->second.acquired_seq);
                finding.witness_tids.push_back(edge->second.tid);
                instances = std::max(instances, edge->second.count);
            }
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%s0x%llx",
                          i == 0 ? "" : " -> ",
                          static_cast<unsigned long long>(from));
            locks += buf;
        }
        finding.count = std::max<std::uint64_t>(instances, 1);
        finding.message = "lock-order cycle " + locks + " -> back";
        report.add(std::move(finding));
    }
    return report;
}

std::vector<LockOrderEdge>
LockOrderDetector::edges() const
{
    std::vector<LockOrderEdge> out;
    out.reserve(edges_.size());
    for (const auto &[key, edge] : edges_)
        out.push_back(edge);
    return out;
}

AnalysisReport
detectLockOrderCycles(const Trace &trace)
{
    LockOrderDetector detector;
    for (const TraceEvent &event : trace.events())
        detector.observe(event);
    AnalysisReport report = detector.finish();
    report.events_analyzed = trace.size();
    return report;
}

} // namespace act
