/**
 * @file
 * The pluggable analysis pipeline: every offline detector in one pass.
 *
 * Runs the lockset, lock-order, atomicity and order-violation detectors
 * plus the vector-clock happens-before oracle over one (read-only)
 * trace — concurrently when asked to — and merges their findings into
 * one deduplicated AnalysisReport. Merging happens in fixed detector
 * order into pre-assigned slots, so the merged report (and its text
 * rendering) is byte-identical at jobs=1 and jobs=4; the wall-clock
 * member is the only scheduling-dependent field and is excluded from
 * toText().
 *
 * The ensemble scorer extends RaceReport::score() to every lens: for a
 * set of predicted RAW dependences (ACT's ranked Debug Buffer
 * candidates) it produces one OracleScore per detector — ground truth
 * being that detector's findings — plus a fused score where a
 * prediction counts as a true positive when *any* lens corroborates it.
 * That is what table5/diagnose-act report as the per-detector and fused
 * precision/recall columns.
 *
 * Dormancy contract (DESIGN section 13): nothing in this file runs
 * unless a caller asks for it. Campaign reports are byte-identical with
 * the pipeline disabled, and telemetry counters ("analysis.*") follow
 * the usual disabled-registry rules.
 */

#ifndef ACT_ANALYSIS_PIPELINE_HH
#define ACT_ANALYSIS_PIPELINE_HH

#include <map>
#include <string>

#include "analysis/atomicity.hh"
#include "analysis/detector.hh"
#include "analysis/lock_order.hh"
#include "analysis/lockset.hh"
#include "analysis/order_check.hh"
#include "analysis/race_oracle.hh"

namespace act
{

/** Invariants mined from passing traces for the training-able lenses. */
struct MinedBaselines
{
    AtomicityBaseline atomicity;
    OrderInvariants order;

    /** Fold one passing trace into both baselines. */
    void
    addPassingTrace(const Trace &trace)
    {
        atomicity.addPassingTrace(trace);
        order.addPassingTrace(trace);
    }
};

/** Pipeline configuration. */
struct PipelineOptions
{
    bool lockset = true;
    bool lock_order = true;
    bool atomicity = true;
    bool order = true;
    bool hb_races = true; //!< FastTrack oracle (the fifth lens).

    /** Detector-level parallelism (1 = sequential). The report is
     *  byte-identical for every value. */
    unsigned jobs = 1;

    /** Mined invariants; null = single-trace mode for both lenses. */
    const MinedBaselines *baselines = nullptr;
};

/** Everything one pipeline pass learned about a trace. */
struct PipelineResult
{
    /** Merged detector findings (lockset/lock-order/atomicity/order). */
    AnalysisReport report;

    /** The happens-before oracle's racy pairs (empty when disabled). */
    RaceReport races;

    /** Scheduling-dependent; never part of the deterministic text. */
    double wall_ms = 0.0;

    /**
     * Deterministic rendering: per-detector finding counts, then the
     * ranked findings, then the oracle's racy pairs.
     */
    std::string toText() const;
};

/** Run every enabled detector over @p trace. */
PipelineResult runAnalysisPipeline(const Trace &trace,
                                   const PipelineOptions &options = {});

/** Per-lens + fused precision/recall of a prediction set. */
struct EnsembleScore
{
    /** Keyed "lockset", "lock-order", "atomicity", "order", "hb". */
    std::map<std::string, OracleScore> per_detector;

    /** TP when any lens corroborates the predicted pair. */
    OracleScore fused;
};

/**
 * Score predicted RAW dependences against every lens of @p result.
 * Intra-thread predictions are skipped (same convention as
 * RaceReport::score); duplicate predicted pairs count once.
 */
EnsembleScore scoreEnsemble(const PipelineResult &result,
                            const std::vector<RawDependence> &predictions);

} // namespace act

#endif // ACT_ANALYSIS_PIPELINE_HH
