#include "analysis/lockset.hh"

#include <algorithm>
#include <cstdio>

namespace act
{

namespace
{

/** Insert @p value into sorted @p values (no-op when present). */
void
sortedInsert(std::vector<Addr> &values, Addr value)
{
    const auto it =
        std::lower_bound(values.begin(), values.end(), value);
    if (it == values.end() || *it != value)
        values.insert(it, value);
}

/** Remove @p value from sorted @p values (no-op when absent). */
void
sortedErase(std::vector<Addr> &values, Addr value)
{
    const auto it =
        std::lower_bound(values.begin(), values.end(), value);
    if (it != values.end() && *it == value)
        values.erase(it);
}

} // namespace

const char *
locksetStateName(LocksetState state)
{
    switch (state) {
      case LocksetState::kVirgin: return "virgin";
      case LocksetState::kExclusive: return "exclusive";
      case LocksetState::kShared: return "shared";
      case LocksetState::kSharedModified: return "shared-modified";
    }
    return "unknown";
}

void
LocksetDetector::refine(VarState &var, const std::vector<Addr> &held)
{
    if (!var.lockset_started) {
        var.lockset = held;
        var.lockset_started = true;
        return;
    }
    std::vector<Addr> intersection;
    std::set_intersection(var.lockset.begin(), var.lockset.end(),
                          held.begin(), held.end(),
                          std::back_inserter(intersection));
    var.lockset = std::move(intersection);
}

void
LocksetDetector::reportViolation(const VarState &var,
                                 const TraceEvent &event)
{
    const bool is_store = event.kind == EventKind::kStore;
    AnalysisFinding finding;
    finding.detector = DetectorKind::kLockset;
    finding.code =
        is_store ? "unlocked-shared-write" : "unlocked-shared-read";
    finding.addr = event.addr;
    if (var.last_write_pc != kInvalidPc &&
        !(var.last_write_pc == event.pc &&
          var.last_write_tid == event.tid)) {
        finding.pcs = {var.last_write_pc, event.pc};
        finding.witness_seqs = {var.last_write_seq, event.seq};
        finding.witness_tids = {var.last_write_tid, event.tid};
    } else {
        finding.pcs = {event.pc};
        finding.witness_seqs = {event.seq};
        finding.witness_tids = {event.tid};
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%s of shared-modified 0x%llx with empty lockset",
                  is_store ? "write" : "read",
                  static_cast<unsigned long long>(event.addr));
    finding.message = buf;
    report_.add(std::move(finding));
}

void
LocksetDetector::observe(const TraceEvent &event)
{
    switch (event.kind) {
      case EventKind::kLock:
        sortedInsert(held_[event.tid], event.addr);
        return;
      case EventKind::kUnlock:
        sortedErase(held_[event.tid], event.addr);
        return;
      case EventKind::kLoad:
      case EventKind::kStore:
        break;
      default:
        return;
    }
    if (event.stack)
        return; // Thread-private by construction.

    VarState &var = vars_[event.addr];
    const bool is_store = event.kind == EventKind::kStore;
    static const std::vector<Addr> kNoLocks;
    const auto held_it = held_.find(event.tid);
    const std::vector<Addr> &held =
        held_it == held_.end() ? kNoLocks : held_it->second;

    switch (var.state) {
      case LocksetState::kVirgin:
        var.state = LocksetState::kExclusive;
        var.owner = event.tid;
        break;
      case LocksetState::kExclusive:
        if (event.tid != var.owner) {
            // First remote access: refinement starts here, forgiving
            // the owner's unlocked initialisation phase (Eraser).
            var.state = is_store ? LocksetState::kSharedModified
                                 : LocksetState::kShared;
            refine(var, held);
        }
        break;
      case LocksetState::kShared:
        refine(var, held);
        if (is_store)
            var.state = LocksetState::kSharedModified;
        break;
      case LocksetState::kSharedModified:
        refine(var, held);
        break;
    }

    if (var.state == LocksetState::kSharedModified &&
        var.lockset.empty()) {
        reportViolation(var, event);
    }

    if (is_store) {
        var.last_write_pc = event.pc;
        var.last_write_tid = event.tid;
        var.last_write_seq = event.seq;
    }
}

LocksetState
LocksetDetector::state(Addr addr) const
{
    const auto it = vars_.find(addr);
    return it == vars_.end() ? LocksetState::kVirgin : it->second.state;
}

std::vector<Addr>
LocksetDetector::candidateLocks(Addr addr) const
{
    const auto it = vars_.find(addr);
    return it == vars_.end() ? std::vector<Addr>{} : it->second.lockset;
}

std::vector<Addr>
LocksetDetector::heldLocks(ThreadId tid) const
{
    const auto it = held_.find(tid);
    return it == held_.end() ? std::vector<Addr>{} : it->second;
}

AnalysisReport
detectLocksetRaces(const Trace &trace)
{
    LocksetDetector detector;
    for (const TraceEvent &event : trace.events())
        detector.observe(event);
    AnalysisReport report = detector.takeReport();
    report.events_analyzed = trace.size();
    return report;
}

} // namespace act
