/**
 * @file
 * Shared currency of the offline concurrency detectors.
 *
 * Every detector of the analysis pipeline (lockset, lock-order,
 * atomicity, order-invariant) reports through AnalysisFinding /
 * AnalysisReport: a finding names its detector, a stable rule code, the
 * static program points that identify the defect (up to three PCs) and
 * the first dynamic witness (seq/tid per PC). Dynamic re-occurrences of
 * the same static defect bump a count instead of producing duplicates,
 * keyed by detector x code x PC tuple, so a report is a set of static
 * defects no matter how long the trace is — and byte-identical no
 * matter how the detectors were scheduled (DESIGN section 13).
 */

#ifndef ACT_ANALYSIS_DETECTOR_HH
#define ACT_ANALYSIS_DETECTOR_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/finding.hh"
#include "common/hashing.hh"
#include "common/types.hh"

namespace act
{

/** The detectors of the analysis pipeline. */
enum class DetectorKind : std::uint8_t
{
    kLockset,   //!< Eraser-style C(v) lockset race detector.
    kLockOrder, //!< Lock-order-graph deadlock detector.
    kAtomicity, //!< AVIO-style unserializable-interleaving detector.
    kOrder      //!< Order-violation / init-before-use checker.
};

inline constexpr std::size_t kDetectorCount = 4;

const char *detectorName(DetectorKind kind);

/** One static defect a detector found, with its first dynamic witness. */
struct AnalysisFinding
{
    DetectorKind detector = DetectorKind::kLockset;

    /** Stable machine-matchable rule code, e.g. "empty-lockset". */
    std::string code;

    /**
     * Static program points, earliest role first. Two entries for pair
     * defects (prior access, later access), three for atomicity triples
     * (preceding local, remote, current local). Lock-order cycles list
     * the acquire sites around the cycle.
     */
    std::vector<Pc> pcs;

    /** Data/lock address of the first witness. */
    Addr addr = 0;

    /** First dynamic witness: one seq/tid per entry of pcs. */
    std::vector<SeqNum> witness_seqs;
    std::vector<ThreadId> witness_tids;

    /** Dynamic occurrences of this static defect. */
    std::uint64_t count = 0;

    /** Human-readable explanation with the offending values. */
    std::string message;

    /** Stable dedup/ranking key: detector x code x PC tuple. */
    std::uint64_t
    key() const
    {
        std::uint64_t k = hash3(static_cast<std::uint64_t>(detector),
                                pcs.size(), 0x4f1d);
        for (const char c : code)
            k = hashCombine(k, static_cast<std::uint64_t>(c));
        for (const Pc pc : pcs)
            k = hashCombine(k, pc);
        return k;
    }

    /** Does the PC set of this finding cover both ends of a pair? */
    bool
    coversPair(Pc store_pc, Pc load_pc) const
    {
        const auto has = [this](Pc pc) {
            return std::find(pcs.begin(), pcs.end(), pc) != pcs.end();
        };
        return has(store_pc) && has(load_pc);
    }

    std::string toString() const;

    /** Bridge into the Finding machinery actlint renders and gates on. */
    Finding toFinding() const;
};

/**
 * Deduplicated, rankable set of detector findings.
 *
 * add() folds dynamic re-occurrences into the existing finding's count;
 * merge() folds whole reports (parallel detector runs land in separate
 * reports that the pipeline merges in fixed detector order). ranked()
 * orders by dynamic count (desc), then detector, code and PC tuple, so
 * the rendering is a pure function of the finding set.
 */
class AnalysisReport
{
  public:
    void add(AnalysisFinding finding);
    void merge(const AnalysisReport &other);

    /** All findings, in first-occurrence order. */
    const std::vector<AnalysisFinding> &findings() const
    {
        return findings_;
    }

    bool empty() const { return findings_.empty(); }
    std::size_t size() const { return findings_.size(); }

    /** Findings sorted: count desc, detector, code, PCs (stable). */
    std::vector<AnalysisFinding> ranked() const;

    /** Findings of one detector. */
    std::size_t countFor(DetectorKind detector) const;

    /**
     * Did @p detector report a finding whose PC set covers both
     * @p store_pc and @p load_pc? The lockset pair may be recorded in
     * either orientation and atomicity triples carry three PCs, so the
     * match is set inclusion, not an ordered-pair comparison.
     */
    bool matchesPair(DetectorKind detector, Pc store_pc,
                     Pc load_pc) const;

    /** Any-detector variant of matchesPair(). */
    bool matchesPairAny(Pc store_pc, Pc load_pc) const;

    /** One finding per line, ranked; "" when empty. */
    std::string toText() const;

    /** The findings as the Finding records actlint renders. */
    std::vector<Finding> toFindings() const;

    /** Events each detector consumed (set by the driver). */
    std::uint64_t events_analyzed = 0;

  private:
    std::vector<AnalysisFinding> findings_;
    std::unordered_map<std::uint64_t, std::size_t> index_; //!< key -> slot.
};

} // namespace act

#endif // ACT_ANALYSIS_DETECTOR_HH
