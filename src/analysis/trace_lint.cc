#include "analysis/trace_lint.hh"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace act
{

namespace
{

constexpr std::uint32_t kMaxAccessSize = 64;

bool
powerOfTwo(std::uint32_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Collects findings and enforces the cap. */
class Reporter
{
  public:
    Reporter(std::vector<Finding> &findings, std::size_t max_findings,
             const char *pass = "trace-lint")
        : findings_(findings), max_findings_(max_findings), pass_(pass)
    {}

    bool
    full() const
    {
        return findings_.size() >= max_findings_;
    }

    template <typename... Args>
    void
    report(SeqNum seq, const char *code, const char *fmt, Args... args)
    {
        if (full())
            return;
        char buf[192];
        std::snprintf(buf, sizeof(buf), fmt, args...);
        findings_.push_back(
            makeFinding(pass_, code, Severity::kError, buf, seq));
        if (full()) {
            findings_.push_back(makeFinding(
                pass_, "too-many-findings", Severity::kWarning,
                "lint stopped early; further findings suppressed", seq));
        }
    }

  private:
    std::vector<Finding> &findings_;
    std::size_t max_findings_;
    const char *pass_;
};

/** Lifecycle/lock state of one thread. */
struct ThreadState
{
    bool ran = false;     //!< Emitted at least one event.
    bool created = false; //!< Named by a kThreadCreate.
    bool exited = false;  //!< Emitted kThreadExit.
    std::unordered_set<Addr> held; //!< Currently held locks.
};

} // namespace

std::vector<Finding>
lintTrace(const Trace &trace, const TraceLintOptions &options)
{
    std::vector<Finding> findings;
    Reporter out(findings, options.max_findings);

    std::unordered_map<ThreadId, ThreadState> threads;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t instructions = 0;

    // The first event's thread is the root: it exists without a create.
    const ThreadId root =
        trace.empty() ? ThreadId{0} : trace.events().front().tid;

    for (std::size_t i = 0; i < trace.size() && !out.full(); ++i) {
        const TraceEvent &event = trace[i];
        const SeqNum at = static_cast<SeqNum>(i);
        instructions += 1 + event.gap;

        if (event.seq != at) {
            out.report(at, "seq-monotone",
                       "event %zu has seq %llu (expected %llu)", i,
                       static_cast<unsigned long long>(event.seq),
                       static_cast<unsigned long long>(at));
        }

        const auto raw_kind = static_cast<std::uint8_t>(event.kind);
        if (raw_kind > static_cast<std::uint8_t>(EventKind::kThreadExit)) {
            out.report(at, "kind-range", "event kind %u out of range",
                       raw_kind);
            continue; // Nothing else about this record is trustworthy.
        }

        ThreadState &state = threads[event.tid];
        if (!state.ran && !state.created && event.tid != root) {
            out.report(at, "create-before-run",
                       "thread %u runs before any create names it",
                       event.tid);
        }
        if (state.exited) {
            out.report(at, "event-after-exit",
                       "thread %u emits %s after its exit", event.tid,
                       eventKindName(event.kind));
        }
        state.ran = true;

        if (event.taken && event.kind != EventKind::kBranch) {
            out.report(at, "flag-taken", "taken flag on %s event",
                       eventKindName(event.kind));
        }
        if (event.stack && !event.isMemory()) {
            out.report(at, "flag-stack", "stack flag on %s event",
                       eventKindName(event.kind));
        }

        switch (event.kind) {
          case EventKind::kLoad:
          case EventKind::kStore:
            event.kind == EventKind::kLoad ? ++loads : ++stores;
            if (event.size > kMaxAccessSize || !powerOfTwo(event.size)) {
                out.report(at, "size-range",
                           "memory access size %u (want power of two "
                           "in 1..%u)",
                           event.size, kMaxAccessSize);
            }
            break;
          case EventKind::kBranch:
            ++branches;
            break;
          case EventKind::kLock:
            if (!state.held.insert(event.addr).second) {
                out.report(at, "lock-balance",
                           "thread %u re-acquires lock 0x%llx it "
                           "already holds",
                           event.tid,
                           static_cast<unsigned long long>(event.addr));
            }
            break;
          case EventKind::kUnlock:
            if (state.held.erase(event.addr) == 0) {
                out.report(at, "lock-balance",
                           "thread %u releases lock 0x%llx it does "
                           "not hold",
                           event.tid,
                           static_cast<unsigned long long>(event.addr));
            }
            break;
          case EventKind::kThreadCreate: {
            if (event.addr > kInvalidThread - 1) {
                out.report(at, "create-invalid",
                           "child id 0x%llx does not fit ThreadId",
                           static_cast<unsigned long long>(event.addr));
                break;
            }
            const auto child = static_cast<ThreadId>(event.addr);
            if (child == event.tid) {
                out.report(at, "create-invalid",
                           "thread %u creates itself", event.tid);
                break;
            }
            ThreadState &child_state = threads[child];
            if (child_state.created || child_state.ran) {
                out.report(at, "create-invalid",
                           "thread %u created twice or after it "
                           "already ran",
                           child);
            }
            child_state.created = true;
            break;
          }
          case EventKind::kThreadExit:
            if (!state.held.empty()) {
                out.report(at, "exit-holding-lock",
                           "thread %u exits holding %zu lock(s)",
                           event.tid, state.held.size());
            }
            state.exited = true;
            break;
        }
    }

    // Crash traces legitimately end mid-flight (locks held, no exits),
    // so end-of-trace adds no lock/exit findings — but the summary
    // counters must match the stream regardless of how it ended.
    if (!out.full()) {
        const struct
        {
            const char *name;
            std::uint64_t expect;
            std::uint64_t got;
        } counters[] = {
            {"loads", loads, trace.loadCount()},
            {"stores", stores, trace.storeCount()},
            {"branches", branches, trace.branchCount()},
            {"instructions", instructions, trace.instructionCount()},
        };
        for (const auto &counter : counters) {
            if (counter.expect != counter.got) {
                out.report(Finding::kNoSeq, "counter-mismatch",
                           "%s counter is %llu but the event stream "
                           "has %llu",
                           counter.name,
                           static_cast<unsigned long long>(counter.got),
                           static_cast<unsigned long long>(
                               counter.expect));
            }
        }
    }
    return findings;
}

std::vector<Finding>
lintEventBatch(std::span<const TraceEvent> batch,
               const BatchLintOptions &options)
{
    std::vector<Finding> findings;
    Reporter out(findings, options.max_findings, "batch-lint");

    std::unordered_map<ThreadId, SeqNum> last_seq;

    for (std::size_t i = 0; i < batch.size() && !out.full(); ++i) {
        const TraceEvent &event = batch[i];
        const SeqNum at = static_cast<SeqNum>(i);

        const auto raw_kind = static_cast<std::uint8_t>(event.kind);
        if (raw_kind >
            static_cast<std::uint8_t>(EventKind::kThreadExit)) {
            out.report(at, "kind-range", "event kind %u out of range",
                       raw_kind);
            continue; // Nothing else about this record is trustworthy.
        }

        if (options.max_threads != 0 &&
            event.tid >= options.max_threads) {
            out.report(at, "tid-range",
                       "thread id %u out of range (max %u)", event.tid,
                       options.max_threads);
            continue;
        }

        const auto [it, inserted] =
            last_seq.try_emplace(event.tid, event.seq);
        if (!inserted) {
            if (event.seq <= it->second) {
                out.report(
                    at, "seq-monotone",
                    "thread %u seq %llu not after its previous %llu",
                    event.tid,
                    static_cast<unsigned long long>(event.seq),
                    static_cast<unsigned long long>(it->second));
            }
            it->second = event.seq;
        }

        if (event.taken && event.kind != EventKind::kBranch) {
            out.report(at, "flag-taken", "taken flag on %s event",
                       eventKindName(event.kind));
        }
        if (event.stack && !event.isMemory()) {
            out.report(at, "flag-stack", "stack flag on %s event",
                       eventKindName(event.kind));
        }
        if (event.isMemory() &&
            (event.size > kMaxAccessSize || !powerOfTwo(event.size))) {
            out.report(at, "size-range",
                       "memory access size %u (want power of two "
                       "in 1..%u)",
                       event.size, kMaxAccessSize);
        }
    }
    return findings;
}

} // namespace act
