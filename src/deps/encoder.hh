/**
 * @file
 * Encoding of RAW dependences into neural-network inputs.
 *
 * The paper feeds sequences of RAW dependences into an MLP but leaves
 * the dependence -> input mapping unspecified. Section II-C's
 * generalisation argument ("a code section often accesses some of the
 * same data that other code sections access ... neural networks can
 * predict the behavior of a completely new code section") requires the
 * encoding to be *similarity preserving* over the program's address
 * space: dependences that look alike must land close together on the
 * input axes. Three encoders are provided:
 *
 *  - PairEncoder (default): two features per dependence, both derived
 *    from raw instruction addresses (no extra hardware state):
 *      u = code-locality: low PC bits of the load, placing the
 *          dependence inside its function/loop body;
 *      v = signed log-magnitude of (load_pc - store_pc), the
 *          communication distance. Valid dependences cluster on a
 *          small set of v values (intra-loop producers sit a few bytes
 *          before their consumers; legitimate cross-function
 *          communication adds a handful of fixed distances), while a
 *          buggy dependence pairs the load with an unrelated writer
 *          and lands far from every learned cluster. New code keeps
 *          the same local structure, which is exactly why the network
 *          generalises to it (Figure 7(b)).
 *
 *  - DictionaryEncoder: first-seen dep -> code (CAM model); precise
 *    for a fixed binary but blind to new code. Ablation arm.
 *
 *  - HashEncoder: stateless scatter hash. Ablation arm.
 */

#ifndef ACT_DEPS_ENCODER_HH
#define ACT_DEPS_ENCODER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "deps/raw_dependence.hh"

namespace act
{

/**
 * Input code range: features map into [-kCodeRange, kCodeRange], which
 * keeps the hidden sigmoids out of their flat regions and measurably
 * improves trainability over a [0, 1) mapping.
 */
inline constexpr double kCodeRange = 2.0;

/** Map a fraction in [0, 1) onto the symmetric code interval. */
constexpr double
codeFromUnit(double unit)
{
    return (unit * 2.0 - 1.0) * kCodeRange;
}

/** Abstract dependence -> input-features encoder. */
class DependenceEncoder
{
  public:
    virtual ~DependenceEncoder() = default;

    /** Number of input features produced per dependence. */
    virtual std::size_t width() const = 0;

    /**
     * Append this dependence's features (each in [-2, 2]) to @p out.
     */
    virtual void encode(const RawDependence &dep,
                        std::vector<double> &out) = 0;

    /** Encode a whole sequence (most recent dependence last). */
    std::vector<double> encodeSequence(const DependenceSequence &seq);

    /**
     * Non-allocating variant: encode into @p out, reusing its storage
     * (cleared first). Hot path of ActModule::onDependence.
     */
    void encodeSequenceInto(const DependenceSequence &seq,
                            std::vector<double> &out);

    /** Deep copy (each AM owns its encoder state snapshot). */
    virtual std::unique_ptr<DependenceEncoder> clone() const = 0;
};

/** Address-feature encoder (default; no per-program state). */
class PairEncoder : public DependenceEncoder
{
  public:
    std::size_t width() const override { return 2; }

    void encode(const RawDependence &dep,
                std::vector<double> &out) override;

    std::unique_ptr<DependenceEncoder> clone() const override;

    /** The code-locality feature u on its own (exposed for tests). */
    static double localityFeature(const RawDependence &dep);

    /** The communication-distance feature v on its own. */
    static double distanceFeature(const RawDependence &dep);
};

/** First-seen dictionary encoder (CAM model; ablation arm). */
class DictionaryEncoder : public DependenceEncoder
{
  public:
    /** @param capacity Number of distinct codes before wrap-around. */
    explicit DictionaryEncoder(std::size_t capacity = 64);

    std::size_t width() const override { return 1; }

    void encode(const RawDependence &dep,
                std::vector<double> &out) override;

    std::unique_ptr<DependenceEncoder> clone() const override;

    /** Distinct dependences seen so far. */
    std::size_t entries() const { return codes_.size(); }

    std::size_t capacity() const { return capacity_; }

  private:
    std::size_t capacity_;
    std::unordered_map<std::uint64_t, std::size_t> codes_;
};

/** Stateless hash encoder (ablation arm). */
class HashEncoder : public DependenceEncoder
{
  public:
    explicit HashEncoder(std::uint64_t salt = 0xec0dedULL) : salt_(salt) {}

    std::size_t width() const override { return 1; }

    void encode(const RawDependence &dep,
                std::vector<double> &out) override;

    std::unique_ptr<DependenceEncoder> clone() const override;

  private:
    std::uint64_t salt_;
};

/** Construct the default encoder used throughout the benches. */
std::unique_ptr<DependenceEncoder> makeDefaultEncoder();

} // namespace act

#endif // ACT_DEPS_ENCODER_HH
