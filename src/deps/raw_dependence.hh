/**
 * @file
 * RAW (read-after-write) data-communication dependences and sequences.
 *
 * Following Section II-B, a dependence S -> L records that load
 * instruction L read a memory word last written by store instruction S.
 * Dependences are labelled inter-thread or intra-thread, and a sequence
 * groups N consecutive dependences observed by the same processor.
 */

#ifndef ACT_DEPS_RAW_DEPENDENCE_HH
#define ACT_DEPS_RAW_DEPENDENCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/hashing.hh"
#include "common/types.hh"

namespace act
{

/** One RAW data-communication dependence. */
struct RawDependence
{
    Pc store_pc = kInvalidPc;  //!< Instruction that produced the value.
    Pc load_pc = kInvalidPc;   //!< Instruction that consumed the value.
    bool inter_thread = false; //!< Writer ran on a different thread.

    bool operator==(const RawDependence &) const = default;

    /** Stable 64-bit identity hash. */
    std::uint64_t
    key() const
    {
        return hash3(store_pc, load_pc, inter_thread ? 1 : 0);
    }

    /** Render e.g. "0x10->0x20 (inter)". */
    std::string toString() const;
};

/**
 * An ordered group of N consecutive dependences from one processor —
 * the unit the neural network classifies and the Debug Buffer stores.
 */
struct DependenceSequence
{
    std::vector<RawDependence> deps;

    bool operator==(const DependenceSequence &) const = default;

    std::size_t length() const { return deps.size(); }

    /** Order-sensitive hash over all member dependences. */
    std::uint64_t key() const;

    /**
     * Length of the common prefix with @p other (the "matched RAW
     * dependences" count of the ranking step, Section III-D).
     */
    std::size_t prefixMatch(const DependenceSequence &other) const;

    std::string toString() const;
};

} // namespace act

#endif // ACT_DEPS_RAW_DEPENDENCE_HH
