#include "deps/raw_dependence.hh"

#include <cstdio>

namespace act
{

std::string
RawDependence::toString() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "0x%llx->0x%llx (%s)",
                  static_cast<unsigned long long>(store_pc),
                  static_cast<unsigned long long>(load_pc),
                  inter_thread ? "inter" : "intra");
    return buf;
}

std::uint64_t
DependenceSequence::key() const
{
    std::uint64_t h = mix64(deps.size());
    for (const auto &dep : deps)
        h = hashCombine(h, dep.key());
    return h;
}

std::size_t
DependenceSequence::prefixMatch(const DependenceSequence &other) const
{
    const std::size_t limit = std::min(deps.size(), other.deps.size());
    std::size_t matched = 0;
    while (matched < limit && deps[matched] == other.deps[matched])
        ++matched;
    return matched;
}

std::string
DependenceSequence::toString() const
{
    std::string out = "(";
    for (std::size_t i = 0; i < deps.size(); ++i) {
        if (i)
            out += ", ";
        out += deps[i].toString();
    }
    out += ")";
    return out;
}

} // namespace act
