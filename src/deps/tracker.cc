#include "deps/tracker.hh"

#include "common/logging.hh"
#include "trace/trace.hh"

namespace act
{

DependenceTracker::DependenceTracker(Granularity granularity,
                                     std::uint32_t line_size)
    : granularity_(granularity), line_size_(line_size)
{
    ACT_ASSERT(line_size_ >= 4 && (line_size_ & (line_size_ - 1)) == 0);
}

Addr
DependenceTracker::normalize(Addr addr) const
{
    if (granularity_ == Granularity::kWord)
        return addr & ~Addr{3};
    return addr & ~static_cast<Addr>(line_size_ - 1);
}

void
DependenceTracker::recordStore(const TraceEvent &event)
{
    ACT_ASSERT(event.kind == EventKind::kStore);
    const Addr loc = normalize(event.addr);
    auto &last = last_[loc];
    if (last.valid())
        previous_[loc] = last;
    last = WriterRecord{event.pc, event.tid};
}

std::optional<RawDependence>
DependenceTracker::formDependence(const TraceEvent &event) const
{
    ACT_ASSERT(event.kind == EventKind::kLoad);
    const auto it = last_.find(normalize(event.addr));
    if (it == last_.end() || !it->second.valid())
        return std::nullopt;
    return RawDependence{it->second.pc, event.pc,
                         it->second.tid != event.tid};
}

std::optional<RawDependence>
DependenceTracker::formNegativeDependence(const TraceEvent &event) const
{
    ACT_ASSERT(event.kind == EventKind::kLoad);
    const Addr loc = normalize(event.addr);
    const auto it = previous_.find(loc);
    if (it == previous_.end() || !it->second.valid())
        return std::nullopt;
    // Skip degenerate negatives identical to the positive dependence.
    const auto last_it = last_.find(loc);
    if (last_it != last_.end() && last_it->second.pc == it->second.pc &&
        (last_it->second.tid != event.tid) ==
            (it->second.tid != event.tid)) {
        return std::nullopt;
    }
    return RawDependence{it->second.pc, event.pc,
                         it->second.tid != event.tid};
}

std::optional<RawDependence>
DependenceTracker::observe(const TraceEvent &event)
{
    switch (event.kind) {
      case EventKind::kStore:
        recordStore(event);
        return std::nullopt;
      case EventKind::kLoad:
        if (isFilteredLoad(event))
            return std::nullopt;
        return formDependence(event);
      default:
        return std::nullopt;
    }
}

void
DependenceTracker::clear()
{
    last_.clear();
    previous_.clear();
}

} // namespace act
