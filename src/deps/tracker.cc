#include "deps/tracker.hh"

#include "common/logging.hh"

namespace act
{

DependenceTracker::DependenceTracker(Granularity granularity,
                                     std::uint32_t line_size)
    : granularity_(granularity), line_size_(line_size)
{
    ACT_ASSERT(line_size_ >= 4 && (line_size_ & (line_size_ - 1)) == 0);
    normalize_mask_ = granularity_ == Granularity::kWord
                          ? ~Addr{3}
                          : ~static_cast<Addr>(line_size_ - 1);
}

std::optional<RawDependence>
DependenceTracker::formNegativeDependence(const TraceEvent &event) const
{
    ACT_ASSERT(event.kind == EventKind::kLoad);
    const WriterEntry *entry = writers_.find(normalize(event.addr));
    if (entry == nullptr || !entry->prev.valid())
        return std::nullopt;
    // Skip degenerate negatives identical to the positive dependence.
    if (entry->last.valid() && entry->last.pc == entry->prev.pc &&
        (entry->last.tid != event.tid) == (entry->prev.tid != event.tid)) {
        return std::nullopt;
    }
    return RawDependence{entry->prev.pc, event.pc,
                         entry->prev.tid != event.tid};
}

void
DependenceTracker::clear()
{
    writers_.clear();
}

} // namespace act
