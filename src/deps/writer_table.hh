/**
 * @file
 * Flat open-addressing map from data addresses to writer records.
 *
 * The dependence tracker is the hottest software structure in the
 * simulate→track→infer pipeline: every store inserts and every load
 * probes it. `std::unordered_map` pays a heap allocation per node and
 * a pointer chase per probe, and the tracker used two of them (last
 * and previous writer) so each store touched both. This table stores
 * both records inline in one power-of-two slot array with linear
 * probing — one hash, one (usually L1-resident) probe chain, zero
 * per-event allocations once warm.
 *
 * Deletion is not supported because the tracker never erases entries
 * (clear() drops everything); that keeps probing tombstone-free.
 */

#ifndef ACT_DEPS_WRITER_TABLE_HH
#define ACT_DEPS_WRITER_TABLE_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace act
{

/** A store that has been observed: who and where. */
struct WriterRecord
{
    Pc pc = kInvalidPc;
    ThreadId tid = kInvalidThread;

    bool valid() const { return pc != kInvalidPc; }
};

/** One tracked location: its last and previous writers. */
struct WriterEntry
{
    Addr key = 0;
    WriterRecord last;
    WriterRecord prev;
    bool used = false;
};

/**
 * Open-addressing hash table of WriterEntry slots.
 */
class WriterTable
{
  public:
    /** @param initial_slots Starting slot count (rounded up to 2^k). */
    explicit WriterTable(std::size_t initial_slots = 1024)
    {
        std::size_t capacity = 16;
        shift_ = 60;
        while (capacity < initial_slots) {
            capacity <<= 1;
            --shift_;
        }
        slots_.resize(capacity);
    }

    std::size_t size() const { return size_; }

    /**
     * Find the entry for @p key, inserting an empty one when absent
     * (entry.last stays invalid until the caller records a store).
     */
    WriterEntry &
    upsert(Addr key)
    {
        if ((size_ + 1) * 10 > slots_.size() * 7)
            grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hashSlot(key);
        for (;;) {
            WriterEntry &slot = slots_[i];
            if (!slot.used) {
                slot.used = true;
                slot.key = key;
                ++size_;
                return slot;
            }
            if (slot.key == key)
                return slot;
            i = (i + 1) & mask;
        }
    }

    /** Find the entry for @p key; nullptr when absent. */
    const WriterEntry *
    find(Addr key) const
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hashSlot(key);
        for (;;) {
            const WriterEntry &slot = slots_[i];
            if (!slot.used)
                return nullptr;
            if (slot.key == key)
                return &slot;
            i = (i + 1) & mask;
        }
    }

    /** Drop every entry; keeps the slot storage allocated. */
    void
    clear()
    {
        for (WriterEntry &slot : slots_)
            slot = WriterEntry{};
        size_ = 0;
    }

  private:
    /**
     * Fibonacci hashing: one multiply, then keep the *high* bits. The
     * high bits of key * phi^-1 are well mixed even for the sequential
     * word addresses traces are full of, at a third of the latency of
     * the SplitMix64 finaliser — and the hash is on the per-event path.
     */
    std::size_t
    hashSlot(Addr key) const
    {
        return static_cast<std::size_t>(
            (key * 0x9e3779b97f4a7c15ULL) >> shift_);
    }

    void
    grow()
    {
        std::vector<WriterEntry> old;
        old.swap(slots_);
        slots_.resize(old.size() * 2);
        --shift_;
        const std::size_t mask = slots_.size() - 1;
        for (const WriterEntry &entry : old) {
            if (!entry.used)
                continue;
            std::size_t i = hashSlot(entry.key);
            while (slots_[i].used)
                i = (i + 1) & mask;
            slots_[i] = entry;
        }
    }

    std::vector<WriterEntry> slots_;
    std::size_t size_ = 0;
    unsigned shift_ = 54; //!< 64 - log2(slots).
};

} // namespace act

#endif // ACT_DEPS_WRITER_TABLE_HH
