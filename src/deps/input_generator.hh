/**
 * @file
 * The Input Generator of Figure 4(a): turns execution traces into
 * RAW-dependence sequences and labelled training examples.
 *
 * For every dependence S -> L it groups the last N-1 dependences from
 * the same thread with S -> L to form a positive example, and — when
 * the location has a known writer-before-last S' — pairs the same
 * history with S' -> L to form a negative example (Section III-B).
 *
 * When a location has only ever had a single static writer (common in
 * the synthetic kernels, where each array slot is produced by exactly
 * one store instruction), the paper's writer-before-last construction
 * degenerates to the positive example itself. In that case the
 * generator falls back to a *shuffled-writer* negative: the load is
 * paired with another store instruction observed in the same trace,
 * which is precisely the kind of communication a bug creates. The
 * fallback is deterministic in the trace content.
 */

#ifndef ACT_DEPS_INPUT_GENERATOR_HH
#define ACT_DEPS_INPUT_GENERATOR_HH

#include <vector>

#include "deps/encoder.hh"
#include "deps/tracker.hh"
#include "nn/dataset.hh"
#include "trace/trace.hh"

namespace act
{

/** Sequences extracted from one trace. */
struct GeneratedSequences
{
    /** Valid sequences, one per load with enough history. */
    std::vector<DependenceSequence> positives;

    /** Thread that executed each positive's final load (parallel to
     *  positives; used for per-thread weight specialisation). */
    std::vector<ThreadId> positive_tids;

    /** Synthesised invalid sequences (may be fewer than positives). */
    std::vector<DependenceSequence> negatives;

    /** Thread of each negative's final load (parallel to negatives). */
    std::vector<ThreadId> negative_tids;

    /** All RAW dependences formed, before sequence grouping. */
    std::size_t dependence_count = 0;
};

/**
 * Trace -> sequence/dataset converter.
 */
class InputGenerator
{
  public:
    /**
     * @param sequence_length N, dependences per sequence (paper: 1..5).
     * @param granularity     Last-writer tracking granularity.
     * @param line_size       Cache line size for kLine granularity.
     */
    explicit InputGenerator(std::size_t sequence_length,
                            Granularity granularity = Granularity::kWord,
                            std::uint32_t line_size = 64);

    std::size_t sequenceLength() const { return sequence_length_; }

    /**
     * Extract positive and negative sequences from @p trace.
     *
     * @param trace         The execution trace to analyse.
     * @param with_negatives Whether to synthesise negative examples.
     */
    GeneratedSequences process(const Trace &trace,
                               bool with_negatives = true) const;

    /**
     * Extract sequences and encode them into a labelled dataset.
     *
     * @param trace          Source trace.
     * @param encoder        Dependence encoder (its dictionary grows).
     * @param with_negatives Whether negatives are included.
     */
    Dataset buildDataset(const Trace &trace, DependenceEncoder &encoder,
                         bool with_negatives = true) const;

    /** Encode already-extracted sequences into a dataset. */
    static Dataset toDataset(const GeneratedSequences &sequences,
                             DependenceEncoder &encoder,
                             bool with_negatives = true);

  private:
    std::size_t sequence_length_;
    Granularity granularity_;
    std::uint32_t line_size_;
};

} // namespace act

#endif // ACT_DEPS_INPUT_GENERATOR_HH
