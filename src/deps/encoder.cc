#include "deps/encoder.hh"

#include <algorithm>
#include <cmath>

namespace act
{

std::vector<double>
DependenceEncoder::encodeSequence(const DependenceSequence &seq)
{
    std::vector<double> inputs;
    encodeSequenceInto(seq, inputs);
    return inputs;
}

void
DependenceEncoder::encodeSequenceInto(const DependenceSequence &seq,
                                      std::vector<double> &out)
{
    out.clear();
    out.reserve(seq.deps.size() * width());
    for (const auto &dep : seq.deps)
        encode(dep, out);
}

double
PairEncoder::localityFeature(const RawDependence &dep)
{
    // Low 12 word-address bits of the load PC: its position inside the
    // surrounding function / loop nest. The feature is deliberately
    // compressed to a tenth of the code range: locality refines the
    // decision near learned code but must not dominate the distance
    // feature, or the network could not extrapolate to functions it
    // never saw (the Figure 7(b) adaptivity property). Inter-thread
    // communication is a different phenomenon than local forwarding at
    // the same site; shifting it by a quarter band separates the two
    // populations without disturbing the distance feature.
    const std::uint64_t index = (dep.load_pc >> 2) & 0xFFF;
    const double base =
        codeFromUnit(static_cast<double>(index) / 4096.0) * 0.1;
    const double label_shift = dep.inter_thread ? 0.25 : 0.0;
    return std::clamp(base + label_shift, -kCodeRange, kCodeRange);
}

double
PairEncoder::distanceFeature(const RawDependence &dep)
{
    const auto delta = static_cast<double>(
        static_cast<std::int64_t>(dep.load_pc) -
        static_cast<std::int64_t>(dep.store_pc));
    const double magnitude =
        std::log2(1.0 + std::abs(delta)) / 16.0 * kCodeRange;
    const double signed_mag = std::copysign(magnitude, delta);
    return std::clamp(signed_mag, -kCodeRange, kCodeRange);
}

void
PairEncoder::encode(const RawDependence &dep, std::vector<double> &out)
{
    out.push_back(localityFeature(dep));
    out.push_back(distanceFeature(dep));
}

std::unique_ptr<DependenceEncoder>
PairEncoder::clone() const
{
    return std::make_unique<PairEncoder>(*this);
}

DictionaryEncoder::DictionaryEncoder(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

void
DictionaryEncoder::encode(const RawDependence &dep,
                          std::vector<double> &out)
{
    const auto [it, inserted] = codes_.try_emplace(dep.key(), codes_.size());
    const std::size_t slot = it->second % capacity_;
    out.push_back(codeFromUnit((static_cast<double>(slot) + 0.5) /
                               static_cast<double>(capacity_)));
}

std::unique_ptr<DependenceEncoder>
DictionaryEncoder::clone() const
{
    return std::make_unique<DictionaryEncoder>(*this);
}

void
HashEncoder::encode(const RawDependence &dep, std::vector<double> &out)
{
    out.push_back(
        codeFromUnit(hashToUnit(hashCombine(salt_, dep.key()))));
}

std::unique_ptr<DependenceEncoder>
HashEncoder::clone() const
{
    return std::make_unique<HashEncoder>(*this);
}

std::unique_ptr<DependenceEncoder>
makeDefaultEncoder()
{
    return std::make_unique<PairEncoder>();
}

} // namespace act
