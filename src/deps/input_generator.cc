#include "deps/input_generator.hh"

#include <cmath>

#include "common/logging.hh"
#include "nn/network.hh"

namespace act
{

InputGenerator::InputGenerator(std::size_t sequence_length,
                               Granularity granularity,
                               std::uint32_t line_size)
    : sequence_length_(sequence_length), granularity_(granularity),
      line_size_(line_size)
{
    ACT_ASSERT(sequence_length_ >= 1 && sequence_length_ <= kMaxFanIn);
}

namespace
{

/**
 * Fixed-capacity sliding window of one thread's recent dependences.
 * Ring storage sized at sequence length: once warm it never allocates,
 * and the workloads run a handful of threads, so the containing list
 * is a small vector scanned linearly rather than a hash map.
 */
struct ThreadWindow
{
    ThreadWindow(ThreadId thread, std::size_t length)
        : tid(thread), ring(length)
    {}

    void
    push(const RawDependence &dep)
    {
        ring[next] = dep;
        next = next + 1 == ring.size() ? 0 : next + 1;
        if (size < ring.size())
            ++size;
    }

    /** Copy the window, oldest first, into @p out (requires full()). */
    void
    copyTo(std::vector<RawDependence> &out) const
    {
        out.resize(ring.size());
        std::size_t i = next; // Oldest slot once the ring is full.
        for (std::size_t k = 0; k < ring.size(); ++k) {
            out[k] = ring[i];
            i = i + 1 == ring.size() ? 0 : i + 1;
        }
    }

    bool full() const { return size == ring.size(); }

    ThreadId tid;
    std::vector<RawDependence> ring;
    std::size_t size = 0;
    std::size_t next = 0; //!< Slot the next dependence lands in.
};

} // namespace

GeneratedSequences
InputGenerator::process(const Trace &trace, bool with_negatives) const
{
    GeneratedSequences out;
    DependenceTracker tracker(granularity_, line_size_);

    // Sliding window of recent dependences, per thread (the paper
    // assigns a dependence to the processor executing the load).
    std::vector<ThreadWindow> history;
    const auto windowFor = [&](ThreadId tid) -> ThreadWindow & {
        for (auto &window : history) {
            if (window.tid == tid)
                return window;
        }
        history.emplace_back(tid, sequence_length_);
        return history.back();
    };

    // Every load can yield at most one positive (and one negative), so
    // the load counter bounds the output sizes.
    const auto load_bound = static_cast<std::size_t>(trace.loadCount());
    out.positives.reserve(load_bound);
    out.positive_tids.reserve(load_bound);
    if (with_negatives) {
        out.negatives.reserve(load_bound);
        out.negative_tids.reserve(load_bound);
    }

    Rng negative_rng(hashCombine(0x9e6a71fe5ULL, trace.size()));

    // Synthetic wrong-writer fallback: a store at a log-uniform random
    // distance on a random side of the load — the communication shape
    // a bug produces. Distances too close to the true dependence's own
    // band are rejected so negatives never contradict positives.
    const auto synthesizeNegative =
        [&](const RawDependence &dep) -> std::optional<RawDependence> {
        const auto true_delta = static_cast<double>(
            std::abs(static_cast<std::int64_t>(dep.load_pc) -
                     static_cast<std::int64_t>(dep.store_pc)));
        const double true_log = std::log2(1.0 + true_delta);
        for (int attempt = 0; attempt < 4; ++attempt) {
            // Stay well clear of the tight-forwarding band (deltas of
            // a few words) so nearby-but-unseen code is still judged
            // by similarity rather than squeezed by a negative.
            const double log_delta = negative_rng.uniform(4.2, 17.0);
            if (std::abs(log_delta - true_log) < 0.75)
                continue;
            const auto delta = static_cast<std::int64_t>(
                std::exp2(log_delta));
            const bool above = negative_rng.chance(0.5);
            const Pc wrong = above ? dep.load_pc + delta
                                   : dep.load_pc - delta;
            return RawDependence{wrong, dep.load_pc, dep.inter_thread};
        }
        return std::nullopt;
    };

    for (const auto &event : trace.events()) {
        if (event.kind == EventKind::kStore) {
            tracker.recordStore(event);
            continue;
        }
        if (event.kind != EventKind::kLoad || isFilteredLoad(event))
            continue;

        const auto dep = tracker.formDependence(event);
        if (!dep)
            continue;
        ++out.dependence_count;

        auto &window = windowFor(event.tid);
        window.push(*dep);
        if (!window.full())
            continue;

        DependenceSequence positive;
        window.copyTo(positive.deps);
        out.positives.push_back(positive);
        out.positive_tids.push_back(event.tid);

        if (!with_negatives)
            continue;

        if (const auto neg = tracker.formNegativeDependence(event)) {
            DependenceSequence negative = positive;
            negative.deps.back() = *neg;
            out.negatives.push_back(std::move(negative));
            out.negative_tids.push_back(event.tid);
        } else if (const auto neg = synthesizeNegative(*dep)) {
            DependenceSequence negative = positive;
            negative.deps.back() = *neg;
            out.negatives.push_back(std::move(negative));
            out.negative_tids.push_back(event.tid);
        }
    }
    return out;
}

Dataset
InputGenerator::buildDataset(const Trace &trace, DependenceEncoder &encoder,
                             bool with_negatives) const
{
    return toDataset(process(trace, with_negatives), encoder,
                     with_negatives);
}

Dataset
InputGenerator::toDataset(const GeneratedSequences &sequences,
                          DependenceEncoder &encoder, bool with_negatives)
{
    Dataset data;
    for (const auto &seq : sequences.positives)
        data.add(Example{encoder.encodeSequence(seq), 1.0});
    if (with_negatives) {
        for (const auto &seq : sequences.negatives)
            data.add(Example{encoder.encodeSequence(seq), 0.0});
    }
    return data;
}

} // namespace act
