/**
 * @file
 * Exact last-writer tracking over execution traces.
 *
 * This is the software (Input Generator, Figure 4(a)) counterpart of
 * the cache-line last-writer extension: it remembers, per tracked
 * location, which store instruction wrote last (and which wrote before
 * that, so negative training examples can be synthesised per
 * Section III-B). Granularity is configurable — per word (the design
 * of Section III) or per cache line (the Section V simplification whose
 * false-sharing cost bench/fig10 measures).
 */

#ifndef ACT_DEPS_TRACKER_HH
#define ACT_DEPS_TRACKER_HH

#include <optional>
#include <unordered_map>

#include "common/types.hh"
#include "deps/raw_dependence.hh"
#include "trace/event.hh"

namespace act
{

/** Location granularity at which last writers are remembered. */
enum class Granularity : std::uint8_t
{
    kWord, //!< 4-byte words (precise; default design).
    kLine  //!< Whole cache lines (cheaper; false sharing possible).
};

/** A store that has been observed: who and where. */
struct WriterRecord
{
    Pc pc = kInvalidPc;
    ThreadId tid = kInvalidThread;

    bool valid() const { return pc != kInvalidPc; }
};

/**
 * Maps data addresses to their most recent writers.
 */
class DependenceTracker
{
  public:
    /**
     * @param granularity Tracking granularity.
     * @param line_size   Cache line size in bytes (kLine granularity).
     */
    explicit DependenceTracker(Granularity granularity = Granularity::kWord,
                               std::uint32_t line_size = 64);

    /** Record a store event. */
    void recordStore(const TraceEvent &event);

    /**
     * Form the RAW dependence for a load event, if the location has a
     * known writer.
     *
     * @param event A kLoad event.
     * @return The dependence, or nullopt when no writer is known (e.g.,
     *         the location was never written in this trace).
     */
    std::optional<RawDependence> formDependence(
        const TraceEvent &event) const;

    /**
     * Form the *invalid* dependence for a load: same load instruction,
     * but paired with the store before the last store to the location.
     * Used to create negative training examples.
     */
    std::optional<RawDependence> formNegativeDependence(
        const TraceEvent &event) const;

    /** Dispatch on event kind; returns a dependence for loads. */
    std::optional<RawDependence> observe(const TraceEvent &event);

    /** Number of tracked locations. */
    std::size_t trackedLocations() const { return last_.size(); }

    void clear();

    Granularity granularity() const { return granularity_; }

  private:
    Addr normalize(Addr addr) const;

    Granularity granularity_;
    std::uint32_t line_size_;
    std::unordered_map<Addr, WriterRecord> last_;
    std::unordered_map<Addr, WriterRecord> previous_;
};

} // namespace act

#endif // ACT_DEPS_TRACKER_HH
