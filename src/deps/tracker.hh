/**
 * @file
 * Exact last-writer tracking over execution traces.
 *
 * This is the software (Input Generator, Figure 4(a)) counterpart of
 * the cache-line last-writer extension: it remembers, per tracked
 * location, which store instruction wrote last (and which wrote before
 * that, so negative training examples can be synthesised per
 * Section III-B). Granularity is configurable — per word (the design
 * of Section III) or per cache line (the Section V simplification whose
 * false-sharing cost bench/fig10 measures).
 */

#ifndef ACT_DEPS_TRACKER_HH
#define ACT_DEPS_TRACKER_HH

#include <optional>

#include "common/types.hh"
#include "deps/raw_dependence.hh"
#include "deps/writer_table.hh" // WriterRecord + flat storage
#include "trace/event.hh"
#include "trace/trace.hh" // isFilteredLoad

namespace act
{

/** Location granularity at which last writers are remembered. */
enum class Granularity : std::uint8_t
{
    kWord, //!< 4-byte words (precise; default design).
    kLine  //!< Whole cache lines (cheaper; false sharing possible).
};

/**
 * Maps data addresses to their most recent writers.
 */
class DependenceTracker
{
  public:
    /**
     * @param granularity Tracking granularity.
     * @param line_size   Cache line size in bytes (kLine granularity).
     */
    explicit DependenceTracker(Granularity granularity = Granularity::kWord,
                               std::uint32_t line_size = 64);

    // The tracker sits on the per-event hot path (every store inserts,
    // every load probes), so the accessors below are defined inline:
    // out-of-line definitions cost a call per event and stop the
    // compiler from fusing the hash/probe with the caller's loop.

    /** Record a store event. */
    void
    recordStore(const TraceEvent &event)
    {
        WriterEntry &entry = writers_.upsert(normalize(event.addr));
        if (entry.last.valid())
            entry.prev = entry.last;
        entry.last = WriterRecord{event.pc, event.tid};
    }

    /**
     * Form the RAW dependence for a load event, if the location has a
     * known writer.
     *
     * @param event A kLoad event.
     * @return The dependence, or nullopt when no writer is known (e.g.,
     *         the location was never written in this trace).
     */
    std::optional<RawDependence>
    formDependence(const TraceEvent &event) const
    {
        const WriterEntry *entry = writers_.find(normalize(event.addr));
        if (entry == nullptr || !entry->last.valid())
            return std::nullopt;
        return RawDependence{entry->last.pc, event.pc,
                             entry->last.tid != event.tid};
    }

    /**
     * Form the *invalid* dependence for a load: same load instruction,
     * but paired with the store before the last store to the location.
     * Used to create negative training examples.
     */
    std::optional<RawDependence> formNegativeDependence(
        const TraceEvent &event) const;

    /** Dispatch on event kind; returns a dependence for loads. */
    std::optional<RawDependence>
    observe(const TraceEvent &event)
    {
        switch (event.kind) {
          case EventKind::kStore:
            recordStore(event);
            return std::nullopt;
          case EventKind::kLoad:
            if (isFilteredLoad(event))
                return std::nullopt;
            return formDependence(event);
          default:
            return std::nullopt;
        }
    }

    /** Number of tracked locations. */
    std::size_t trackedLocations() const { return writers_.size(); }

    void clear();

    Granularity granularity() const { return granularity_; }

  private:
    Addr normalize(Addr addr) const { return addr & normalize_mask_; }

    Granularity granularity_;
    std::uint32_t line_size_;
    Addr normalize_mask_; //!< Precomputed ~(granule - 1).

    /** Last + previous writer per location, one flat table. */
    WriterTable writers_;
};

} // namespace act

#endif // ACT_DEPS_TRACKER_HH
