/**
 * @file
 * The full simulated machine: cores + memory system + per-core ACT
 * Modules + the OS/thread-library glue of Sections IV-C and IV-D
 * (deterministic thread ids, weight initialisation at thread start,
 * weight save at thread exit, context-switch save/restore and pipeline
 * flush).
 */

#ifndef ACT_SIM_SYSTEM_HH
#define ACT_SIM_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "act/act_module.hh"
#include "sim/core.hh"
#include "sim/memsys.hh"
#include "trace/trace.hh"

namespace act
{

/** Whole-machine configuration. */
struct SystemConfig
{
    MemSystemConfig mem;
    CoreConfig core;

    /** Attach ACT Modules (off = the baseline machine). */
    bool act_enabled = true;
    ActConfig act;
};

/** Whole-machine statistics after a run. */
struct SystemStats
{
    Cycle cycles = 0; //!< Slowest core's final cycle.
    std::uint64_t instructions = 0;
    std::uint64_t context_switches = 0;
    std::uint64_t weight_transfer_instructions = 0;
    MemSystemStats mem;
    ActModuleStats act; //!< Summed over all modules.
    std::vector<Cycle> core_cycles;
};

/**
 * The simulated multiprocessor.
 */
class System
{
  public:
    /**
     * @param config  Machine parameters.
     * @param encoder Prototype dependence encoder for the AMs.
     * @param weights Binary-resident weights (copied; updated weights
     *                are readable via weightStore() after the run).
     */
    System(const SystemConfig &config, const DependenceEncoder &encoder,
           const WeightStore &weights);

    /** Convenience: ACT disabled (baseline machine). */
    explicit System(const SystemConfig &config);

    /** Process one event (events must arrive in trace order). */
    void handle(const TraceEvent &event);

    /** Run a whole recorded trace. */
    void run(const Trace &trace);

    /** Statistics accumulated so far. */
    SystemStats stats() const;

    /** The (possibly retrained) weights after the run. */
    const WeightStore &weightStore() const { return weights_; }

    /** Per-core ACT Module access (null when ACT is disabled). */
    const ActModule *module(CoreId core) const;

    /**
     * All Debug Buffer entries across cores, in logging order — the
     * log the offline postprocessing consumes after a failure.
     */
    std::vector<DebugEntry> collectDebugEntries() const;

    const MemorySystem &memory() const { return mem_; }

  private:
    CoreId coreOf(ThreadId tid) const
    {
        return tid % config_.mem.cores;
    }

    /** Make @p tid the thread running on @p core (switch if needed). */
    void schedule(CoreId core, ThreadId tid);

    SystemConfig config_;
    MemorySystem mem_;
    std::vector<Core> cores_;
    std::vector<std::unique_ptr<ActModule>> modules_;
    WeightStore weights_;

    /** Thread currently scheduled on each core. */
    std::vector<ThreadId> running_;

    /** Saved AM weights of descheduled threads. */
    std::unordered_map<ThreadId, std::vector<double>> switched_out_;

    std::uint64_t context_switches_ = 0;
    std::uint64_t weight_transfer_instructions_ = 0;
};

} // namespace act

#endif // ACT_SIM_SYSTEM_HH
