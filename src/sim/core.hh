/**
 * @file
 * Per-core timing model.
 *
 * Table III's cores are 2-issue / 3-retire out-of-order machines with
 * a 140-entry ROB. This model keeps the throughput-relevant parts:
 * issue-width-limited progress on plain instructions, blocking load
 * latency from the memory system (stores drain through a store
 * buffer), and explicit retire stalls injected by the ACT Module when
 * its input FIFO back-pressures a completed load. Full ROB occupancy
 * simulation is intentionally out of scope; the quantity the benches
 * report — the *relative* overhead of enabling ACT — is governed by
 * the stall terms this model does capture.
 */

#ifndef ACT_SIM_CORE_HH
#define ACT_SIM_CORE_HH

#include <cstdint>

#include "common/types.hh"

namespace act
{

/** Core parameters (Table III). */
struct CoreConfig
{
    std::uint32_t issue_width = 2;
    std::uint32_t retire_width = 3;
    std::uint32_t rob_entries = 140;

    /** Cycles charged for a context switch (pipeline + AM flush). */
    Cycle context_switch_flush = 60;
};

/** Per-core running counters. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Cycle load_stall_cycles = 0;
    Cycle act_stall_cycles = 0;
};

/** One simulated core's clock and counters. */
class Core
{
  public:
    explicit Core(const CoreConfig &config) : config_(config) {}

    Cycle cycle() const { return cycle_; }
    const CoreStats &stats() const { return stats_; }

    /** Issue @p count plain instructions (issue-width limited). */
    void advanceInstructions(std::uint64_t count);

    /** A load completed after @p latency cycles (blocking). */
    void completeLoad(Cycle latency);

    /** A store retired into the store buffer (latency hidden). */
    void completeStore();

    /** Stall the retire stage (ACT FIFO back-pressure). */
    void actStall(Cycle cycles);

    /** Charge a context-switch flush. */
    void contextSwitch();

    /** Force the clock to at least @p cycle (cross-core hand-off). */
    void syncTo(Cycle cycle);

  private:
    CoreConfig config_;
    Cycle cycle_ = 0;
    CoreStats stats_;
};

} // namespace act

#endif // ACT_SIM_CORE_HH
