/**
 * @file
 * The simulated memory system: per-core private L1/L2 caches, a snoopy
 * MESI bus at the L2 level, and the last-writer cache-line extension
 * ACT adds (Sections III-C and V, Table III).
 *
 * Last-writer rules follow the paper's three simplifications, each
 * individually configurable so the benches can measure their cost:
 *  - granularity: per word (precise) or per line (cheap, false
 *    sharing);
 *  - eviction: last-writer metadata is dropped on eviction (not
 *    written back to memory);
 *  - piggybacking: metadata travels only with cache-to-cache transfers
 *    of dirty lines (a read miss served by another cache's M line).
 */

#ifndef ACT_SIM_MEMSYS_HH
#define ACT_SIM_MEMSYS_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/fault_hooks.hh"
#include "common/types.hh"
#include "deps/tracker.hh" // WriterRecord, Granularity
#include "trace/event.hh"

namespace act
{

/** MESI coherence states. */
enum class Mesi : std::uint8_t
{
    kInvalid,
    kShared,
    kExclusive,
    kModified
};

const char *mesiName(Mesi state);

/** Where an access was satisfied. */
enum class AccessLevel : std::uint8_t
{
    kL1,     //!< Local L1 hit.
    kL2,     //!< Local L2 hit.
    kRemote, //!< Cache-to-cache transfer from another core's L2.
    kMemory  //!< Served by main memory.
};

/** Memory-system parameters (Table III defaults). */
struct MemSystemConfig
{
    std::uint32_t cores = 8;

    std::uint32_t l1_bytes = 32 * 1024;
    std::uint32_t l1_assoc = 4;
    std::uint32_t l1_latency = 2;

    std::uint32_t l2_bytes = 512 * 1024;
    std::uint32_t l2_assoc = 8;
    std::uint32_t l2_latency = 10;

    std::uint32_t line_bytes = 64;
    std::uint32_t bus_bytes_per_cycle = 32;
    std::uint32_t memory_latency = 300;

    /** Last-writer tracking granularity (word = precise). */
    Granularity writer_granularity = Granularity::kWord;

    /**
     * Mirror last-writer metadata in main memory so it survives
     * evictions and clean fills (paper: false — Section V drops it).
     */
    bool writeback_writer_metadata = false;

    /**
     * Piggyback last-writer metadata on every cache-sourced response
     * (including clean copies held by sharers) rather than only on
     * dirty cache-to-cache transfers (paper: false).
     */
    bool always_piggyback_writer = false;

    /**
     * Fault-injection decision points for piggybacked last-writer
     * transfers (resilience experiments only). Null — the default —
     * means no faults. Non-owning.
     */
    FaultHooks *faults = nullptr;

    /** Cycles to move one line across the bus. */
    Cycle
    lineTransferCycles() const
    {
        return (line_bytes + bus_bytes_per_cycle - 1) /
               bus_bytes_per_cycle;
    }
};

/** Result of one memory access. */
struct MemAccess
{
    AccessLevel level = AccessLevel::kL1;
    Mesi prior_state = Mesi::kInvalid; //!< Local L2 state before.
    Cycle latency = 0;                 //!< Cycles to completion.
    bool l1_hit = false;

    /** For loads: the last writer of the accessed word, if known. */
    std::optional<WriterRecord> last_writer;
};

/** Aggregate memory-system statistics. */
struct MemSystemStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t cache_to_cache = 0;
    std::uint64_t memory_fetches = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writer_known = 0;  //!< Loads with last-writer info.
    std::uint64_t writer_unknown = 0;
};

/**
 * The full multi-core memory system.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemSystemConfig &config);

    const MemSystemConfig &config() const { return config_; }
    const MemSystemStats &stats() const { return stats_; }

    /**
     * Perform a load or store by @p core.
     *
     * @param core  Issuing core.
     * @param event The memory event (kLoad or kStore).
     * @return Access outcome, including last-writer info for loads.
     */
    MemAccess access(CoreId core, const TraceEvent &event);

    /** Drop all cached state (not the statistics). */
    void reset();

    /**
     * Coherence state of @p addr's line in @p core's L2 (kInvalid when
     * absent). Introspection for tests and debugging.
     */
    Mesi stateOf(CoreId core, Addr addr) const;

  private:
    /**
     * One L2 line's coherence metadata. Last-writer records live in
     * the owning CacheArray's flat arena (one block of `words` records
     * per line, indexed by line position) instead of a per-line vector:
     * the access path is the simulator's hottest loop and per-line heap
     * nodes cost an extra cache miss per touch.
     */
    struct Line
    {
        Addr tag = 0;
        Mesi state = Mesi::kInvalid;
        std::uint64_t lru = 0;
    };

    struct CacheArray
    {
        std::uint32_t sets = 0;
        std::uint32_t assoc = 0;
        std::vector<Line> lines; //!< sets * assoc, set-major.
        /** Last writer per word, lines * words, line-major. */
        std::vector<WriterRecord> writers;
    };

    struct L1Array
    {
        std::uint32_t sets = 0;
        std::uint32_t assoc = 0;
        std::vector<Addr> tags;            //!< sets * assoc.
        std::vector<std::uint8_t> valid;   //!< Byte flags (bit-packed
                                           //!< vector<bool> is slower).
        std::vector<std::uint64_t> lru;
    };

    Addr lineAddr(Addr addr) const
    {
        return addr >> line_shift_;
    }

    std::uint32_t wordIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(addr & word_mask_) >> 2;
    }

    /** The arena block of @p line (always `words_` records). */
    WriterRecord *
    lineWriters(CacheArray &array, const Line *line)
    {
        return array.writers.data() +
               static_cast<std::size_t>(line - array.lines.data()) *
                   words_;
    }

    Line *findLine(CoreId core, Addr line_addr);
    Line &victimLine(CoreId core, Addr line_addr);

    bool l1Lookup(CoreId core, Addr line_addr, bool allocate);
    void l1Invalidate(CoreId core, Addr line_addr);

    MemSystemConfig config_;
    MemSystemStats stats_;
    std::vector<CacheArray> l2_;
    std::vector<L1Array> l1_;
    std::uint64_t tick_ = 0; //!< LRU clock.

    std::uint32_t words_ = 1;     //!< Writer records per line.
    std::uint32_t line_shift_ = 6; //!< log2(line_bytes).
    Addr word_mask_ = 63;          //!< line_bytes - 1.

    /** Memory-resident metadata (writeback_writer_metadata only). */
    std::unordered_map<Addr, std::vector<WriterRecord>> memory_writers_;
};

} // namespace act

#endif // ACT_SIM_MEMSYS_HH
