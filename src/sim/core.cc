#include "sim/core.hh"

#include <algorithm>

namespace act
{

void
Core::advanceInstructions(std::uint64_t count)
{
    stats_.instructions += count;
    cycle_ += (count + config_.issue_width - 1) / config_.issue_width;
}

void
Core::completeLoad(Cycle latency)
{
    ++stats_.loads;
    ++stats_.instructions;
    // The load itself issues in one slot; its data latency is partly
    // hidden by the out-of-order window (up to issue_width independent
    // instructions per cycle continue underneath a short hit).
    const Cycle exposed = latency > 1 ? latency - 1 : 1;
    cycle_ += exposed;
    stats_.load_stall_cycles += exposed;
}

void
Core::completeStore()
{
    ++stats_.stores;
    ++stats_.instructions;
    // Stores retire into the store buffer: one issue slot.
    cycle_ += 1;
}

void
Core::actStall(Cycle cycles)
{
    cycle_ += cycles;
    stats_.act_stall_cycles += cycles;
}

void
Core::contextSwitch()
{
    cycle_ += config_.context_switch_flush;
}

void
Core::syncTo(Cycle cycle)
{
    cycle_ = std::max(cycle_, cycle);
}

} // namespace act
