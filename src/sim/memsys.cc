#include "sim/memsys.hh"

#include <algorithm>

#include "common/logging.hh"

namespace act
{

const char *
mesiName(Mesi state)
{
    switch (state) {
      case Mesi::kInvalid: return "I";
      case Mesi::kShared: return "S";
      case Mesi::kExclusive: return "E";
      case Mesi::kModified: return "M";
    }
    return "?";
}

MemorySystem::MemorySystem(const MemSystemConfig &config)
    : config_(config)
{
    ACT_ASSERT(config_.cores >= 1);
    ACT_ASSERT(config_.line_bytes >= 4 &&
               (config_.line_bytes & (config_.line_bytes - 1)) == 0);

    const std::uint32_t l2_lines = config_.l2_bytes / config_.line_bytes;
    const std::uint32_t l2_sets = l2_lines / config_.l2_assoc;
    ACT_ASSERT(l2_sets >= 1);
    const std::uint32_t l1_lines = config_.l1_bytes / config_.line_bytes;
    const std::uint32_t l1_sets = l1_lines / config_.l1_assoc;
    ACT_ASSERT(l1_sets >= 1);

    words_ = config_.writer_granularity == Granularity::kWord
                 ? config_.line_bytes / 4
                 : 1;
    line_shift_ = 0;
    while ((config_.line_bytes >> line_shift_) > 1)
        ++line_shift_;
    // With per-line granularity the arena has one record per line, so
    // wordIndex must collapse to 0; a zero mask does that branch-free.
    word_mask_ = config_.writer_granularity == Granularity::kWord
                     ? config_.line_bytes - 1
                     : 0;

    l2_.resize(config_.cores);
    l1_.resize(config_.cores);
    for (CoreId c = 0; c < config_.cores; ++c) {
        l2_[c].sets = l2_sets;
        l2_[c].assoc = config_.l2_assoc;
        const auto l2_entries =
            static_cast<std::size_t>(l2_sets) * config_.l2_assoc;
        l2_[c].lines.resize(l2_entries);
        l2_[c].writers.assign(l2_entries * words_, WriterRecord{});

        l1_[c].sets = l1_sets;
        l1_[c].assoc = config_.l1_assoc;
        const auto n = static_cast<std::size_t>(l1_sets) *
                       config_.l1_assoc;
        l1_[c].tags.assign(n, 0);
        l1_[c].valid.assign(n, 0);
        l1_[c].lru.assign(n, 0);
    }
}

MemorySystem::Line *
MemorySystem::findLine(CoreId core, Addr line_addr)
{
    CacheArray &array = l2_[core];
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr % array.sets);
    Line *base = &array.lines[static_cast<std::size_t>(set) * array.assoc];
    for (std::uint32_t w = 0; w < array.assoc; ++w) {
        Line &line = base[w];
        if (line.state != Mesi::kInvalid && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

MemorySystem::Line &
MemorySystem::victimLine(CoreId core, Addr line_addr)
{
    CacheArray &array = l2_[core];
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr % array.sets);
    Line *base = &array.lines[static_cast<std::size_t>(set) * array.assoc];
    Line *victim = base;
    for (std::uint32_t w = 0; w < array.assoc; ++w) {
        Line &line = base[w];
        if (line.state == Mesi::kInvalid)
            return line;
        if (line.lru < victim->lru)
            victim = &line;
    }
    // Evict: per Section V, last-writer metadata is not written back
    // to memory (unless the ablation flag says otherwise, in which
    // case this model simply keeps no record either way — the flag
    // exists to quantify the dependence-loss rate).
    ++stats_.evictions;
    l1Invalidate(core, victim->tag);
    victim->state = Mesi::kInvalid;
    std::fill_n(lineWriters(array, victim), words_, WriterRecord{});
    return *victim;
}

bool
MemorySystem::l1Lookup(CoreId core, Addr line_addr, bool allocate)
{
    L1Array &array = l1_[core];
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr % array.sets);
    const std::size_t base = static_cast<std::size_t>(set) * array.assoc;
    for (std::uint32_t w = 0; w < array.assoc; ++w) {
        if (array.valid[base + w] != 0 &&
            array.tags[base + w] == line_addr) {
            array.lru[base + w] = ++tick_;
            return true;
        }
    }
    if (!allocate)
        return false;
    std::size_t victim = base;
    for (std::uint32_t w = 0; w < array.assoc; ++w) {
        const std::size_t i = base + w;
        if (array.valid[i] == 0) {
            victim = i;
            break;
        }
        if (array.lru[i] < array.lru[victim])
            victim = i;
    }
    array.tags[victim] = line_addr;
    array.valid[victim] = 1;
    array.lru[victim] = ++tick_;
    return false;
}

void
MemorySystem::l1Invalidate(CoreId core, Addr line_addr)
{
    L1Array &array = l1_[core];
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr % array.sets);
    const std::size_t base = static_cast<std::size_t>(set) * array.assoc;
    for (std::uint32_t w = 0; w < array.assoc; ++w) {
        if (array.valid[base + w] != 0 && array.tags[base + w] == line_addr)
            array.valid[base + w] = 0;
    }
}

MemAccess
MemorySystem::access(CoreId core, const TraceEvent &event)
{
    ACT_ASSERT(core < config_.cores);
    ACT_ASSERT(event.isMemory());

    const bool is_store = event.kind == EventKind::kStore;
    const Addr laddr = lineAddr(event.addr);
    const std::uint32_t word = wordIndex(event.addr);

    MemAccess result;
    Line *line = findLine(core, laddr);
    result.prior_state = line ? line->state : Mesi::kInvalid;

    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    const bool l1_hit = l1Lookup(core, laddr, /*allocate=*/true) &&
                        line != nullptr;

    if (line != nullptr &&
        (is_store ? line->state == Mesi::kModified ||
                        line->state == Mesi::kExclusive
                  : true)) {
        // Local hit (loads hit in any valid state; stores need
        // ownership).
        line->lru = ++tick_;
        WriterRecord *writers = lineWriters(l2_[core], line);
        if (is_store) {
            line->state = Mesi::kModified;
            writers[word] = WriterRecord{event.pc, event.tid};
            if (config_.writeback_writer_metadata) {
                auto &mem = memory_writers_[laddr];
                mem.resize(words_);
                mem[word] = writers[word];
            }
        } else {
            result.last_writer =
                writers[word].valid()
                    ? std::optional<WriterRecord>(writers[word])
                    : std::nullopt;
        }
        result.l1_hit = l1_hit;
        if (l1_hit) {
            result.level = AccessLevel::kL1;
            result.latency = config_.l1_latency;
            ++stats_.l1_hits;
        } else {
            result.level = AccessLevel::kL2;
            result.latency = config_.l1_latency + config_.l2_latency;
            ++stats_.l2_hits;
        }
        if (!is_store) {
            if (result.last_writer)
                ++stats_.writer_known;
            else
                ++stats_.writer_unknown;
        }
        return result;
    }

    // Miss or upgrade: snoop the other cores.
    Line *owner = nullptr;
    CoreId owner_core = kInvalidCore;
    bool owner_was_modified = false;
    bool any_sharer = false;
    for (CoreId c = 0; c < config_.cores; ++c) {
        if (c == core)
            continue;
        if (Line *remote = findLine(c, laddr)) {
            any_sharer = true;
            if (remote->state == Mesi::kModified ||
                remote->state == Mesi::kExclusive) {
                owner = remote;
                owner_core = c;
                owner_was_modified = remote->state == Mesi::kModified;
            }
            if (is_store) {
                remote->state = Mesi::kInvalid;
                std::fill_n(lineWriters(l2_[c], remote), words_,
                            WriterRecord{});
                l1Invalidate(c, laddr);
                ++stats_.invalidations;
            } else if (remote->state == Mesi::kModified ||
                       remote->state == Mesi::kExclusive) {
                remote->state = Mesi::kShared;
            }
        }
    }

    const bool upgrade = line != nullptr; // store to an S line
    Line &dest = upgrade ? *line : victimLine(core, laddr);
    WriterRecord *dest_writers = lineWriters(l2_[core], &dest);
    if (!upgrade) {
        dest.tag = laddr;
        std::fill_n(dest_writers, words_, WriterRecord{});
    }
    dest.lru = ++tick_;

    const Cycle base_latency = config_.l1_latency + config_.l2_latency;

    // Move last-writer metadata. For a load, Section V piggybacks it
    // only when the response is a dirty cache-to-cache transfer; the
    // ablation flags extend that to clean sharers and to memory.
    bool piggybacked = false;
    if (owner != nullptr && !is_store &&
        (owner_was_modified || config_.always_piggyback_writer)) {
        std::copy_n(lineWriters(l2_[owner_core], owner), words_,
                    dest_writers);
        piggybacked = true;
    } else if (!is_store && config_.always_piggyback_writer) {
        for (CoreId c = 0; c < config_.cores && !piggybacked; ++c) {
            if (c == core)
                continue;
            if (Line *remote = findLine(c, laddr)) {
                std::copy_n(lineWriters(l2_[c], remote), words_,
                            dest_writers);
                piggybacked = true;
            }
        }
    }
    if (!piggybacked && !is_store && config_.writeback_writer_metadata) {
        if (const auto it = memory_writers_.find(laddr);
            it != memory_writers_.end()) {
            std::copy_n(it->second.data(),
                        std::min<std::size_t>(it->second.size(), words_),
                        dest_writers);
            piggybacked = true;
        }
    }

    // Injected coherence fault: the piggybacked metadata block is lost
    // in transit (kDrop) or arrives pointing at the wrong store
    // (kStale). One decision per transfer, not per word.
    if (piggybacked && config_.faults) {
        switch (config_.faults->onWriterTransfer()) {
        case WriterFaultAction::kNone:
            break;
        case WriterFaultAction::kDrop:
            std::fill_n(dest_writers, words_, WriterRecord{});
            piggybacked = false;
            break;
        case WriterFaultAction::kStale:
            for (std::uint32_t w = 0; w < words_; ++w) {
                if (dest_writers[w].valid())
                    dest_writers[w].pc ^= Pc{0x1000};
            }
            break;
        }
    }

    if (owner != nullptr) {
        result.level = AccessLevel::kRemote;
        result.latency = base_latency + config_.lineTransferCycles() + 4;
        ++stats_.cache_to_cache;
    } else {
        result.level = AccessLevel::kMemory;
        result.latency = base_latency + config_.memory_latency;
        ++stats_.memory_fetches;
    }

    if (is_store) {
        dest.state = Mesi::kModified;
        dest_writers[word] = WriterRecord{event.pc, event.tid};
        if (config_.writeback_writer_metadata) {
            auto &mem = memory_writers_[laddr];
            mem.resize(words_);
            mem[word] = dest_writers[word];
        }
    } else {
        dest.state = any_sharer ? Mesi::kShared : Mesi::kExclusive;
        if (piggybacked && dest_writers[word].valid())
            result.last_writer = dest_writers[word];
        if (result.last_writer)
            ++stats_.writer_known;
        else
            ++stats_.writer_unknown;
    }
    result.l1_hit = false;
    return result;
}

Mesi
MemorySystem::stateOf(CoreId core, Addr addr) const
{
    ACT_ASSERT(core < config_.cores);
    const Addr laddr = lineAddr(addr);
    const Line *line =
        const_cast<MemorySystem *>(this)->findLine(core, laddr);
    return line ? line->state : Mesi::kInvalid;
}

void
MemorySystem::reset()
{
    for (auto &array : l2_) {
        for (auto &line : array.lines)
            line.state = Mesi::kInvalid;
        std::fill(array.writers.begin(), array.writers.end(),
                  WriterRecord{});
    }
    for (auto &array : l1_)
        std::fill(array.valid.begin(), array.valid.end(), 0);
    memory_writers_.clear();
}

} // namespace act
