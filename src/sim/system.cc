#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"

namespace act
{

System::System(const SystemConfig &config, const DependenceEncoder &encoder,
               const WeightStore &weights)
    : config_(config), mem_(config.mem), weights_(weights)
{
    cores_.assign(config_.mem.cores, Core(config_.core));
    running_.assign(config_.mem.cores, kInvalidThread);
    if (config_.act_enabled) {
        modules_.reserve(config_.mem.cores);
        for (CoreId c = 0; c < config_.mem.cores; ++c)
            modules_.push_back(
                std::make_unique<ActModule>(config_.act, encoder));
    }
}

System::System(const SystemConfig &config)
    : config_(config), mem_(config.mem)
{
    config_.act_enabled = false;
    cores_.assign(config_.mem.cores, Core(config_.core));
    running_.assign(config_.mem.cores, kInvalidThread);
}

void
System::schedule(CoreId core, ThreadId tid)
{
    if (running_[core] == tid)
        return;

    Core &cpu = cores_[core];
    if (running_[core] != kInvalidThread) {
        ++context_switches_;
        cpu.contextSwitch();
        if (config_.act_enabled) {
            ActModule &am = *modules_[core];
            am.flushPipeline();
            switched_out_[running_[core]] = am.saveWeights();
            const auto w = am.network().weightCount() * am.memberCount();
            weight_transfer_instructions_ +=
                IsaCostModel::weightTransferInstructions(w);
            cpu.advanceInstructions(
                IsaCostModel::weightTransferInstructions(w));
        }
    }
    running_[core] = tid;
    if (config_.act_enabled) {
        ActModule &am = *modules_[core];
        std::size_t transferred = 0;
        if (const auto it = switched_out_.find(tid);
            it != switched_out_.end()) {
            am.restoreWeights(it->second);
            transferred = it->second.size();
        } else {
            transferred = am.initThread(tid, weights_);
        }
        weight_transfer_instructions_ +=
            IsaCostModel::weightTransferInstructions(transferred);
        cpu.advanceInstructions(
            IsaCostModel::weightTransferInstructions(transferred));
    }
}

void
System::handle(const TraceEvent &event)
{
    const CoreId core_id = coreOf(event.tid);
    Core &cpu = cores_[core_id];
    schedule(core_id, event.tid);

    if (event.gap > 0)
        cpu.advanceInstructions(event.gap);

    switch (event.kind) {
      case EventKind::kStore: {
        mem_.access(core_id, event);
        cpu.completeStore();
        break;
      }
      case EventKind::kLoad: {
        const MemAccess access = mem_.access(core_id, event);
        cpu.completeLoad(access.latency);
        if (config_.act_enabled && !event.stack && access.last_writer) {
            const RawDependence dep{
                access.last_writer->pc, event.pc,
                access.last_writer->tid != event.tid};
            const ActOutcome outcome = modules_[core_id]->onDependence(
                dep, event.tid, cpu.cycle());
            if (outcome.stall_cycles > 0)
                cpu.actStall(outcome.stall_cycles);
        }
        break;
      }
      case EventKind::kBranch: {
        cpu.advanceInstructions(1);
        break;
      }
      case EventKind::kLock:
      case EventKind::kUnlock: {
        // Model the lock word access as a store (an RMW that needs
        // ownership).
        TraceEvent rmw = event;
        rmw.kind = EventKind::kStore;
        rmw.addr = event.addr;
        mem_.access(core_id, rmw);
        cpu.completeStore();
        break;
      }
      case EventKind::kThreadCreate: {
        cpu.advanceInstructions(20); // spawn path
        break;
      }
      case EventKind::kThreadExit: {
        if (config_.act_enabled) {
            // pthread_exit reads the weights back with ldwt and logs
            // them so the binary can be patched (Section IV-C).
            ActModule &am = *modules_[core_id];
            am.exportWeights(weights_, event.tid);
            const auto w = am.network().weightCount() * am.memberCount();
            weight_transfer_instructions_ +=
                IsaCostModel::weightTransferInstructions(w);
            cpu.advanceInstructions(
                IsaCostModel::weightTransferInstructions(w));
        }
        running_[core_id] = kInvalidThread;
        break;
      }
    }
}

namespace
{

/**
 * Counter handles for the batch publish below. All kStable: each value
 * is a sum of per-run deltas, and every run's delta is a pure function
 * of (trace, config) — scheduling never touches it.
 */
struct SimMetrics
{
    telemetry::Counter events;
    telemetry::Counter instructions;
    telemetry::Counter cycles;
    telemetry::Counter loads;
    telemetry::Counter stores;
    telemetry::Counter dependences;
    telemetry::Counter predictions;
    telemetry::Counter predicted_invalid;
    telemetry::Counter train_updates;
    telemetry::Counter mode_switches;
    telemetry::Counter input_overwrites;
    telemetry::Counter debug_overwrites;
    telemetry::Counter quarantined_weights;

    static const SimMetrics &
    get()
    {
        static const SimMetrics metrics = [] {
            auto &reg = telemetry::MetricsRegistry::global();
            SimMetrics m;
            m.events = reg.counter("sim.events");
            m.instructions = reg.counter("sim.instructions");
            m.cycles = reg.counter("sim.cycles");
            m.loads = reg.counter("mem.loads");
            m.stores = reg.counter("mem.stores");
            m.dependences = reg.counter("act.dependences");
            m.predictions = reg.counter("act.predictions");
            m.predicted_invalid = reg.counter("act.predicted_invalid");
            m.train_updates = reg.counter("act.train_updates");
            m.mode_switches = reg.counter("act.mode_switches");
            m.input_overwrites =
                reg.counter("act.input_buffer_overwrites");
            m.debug_overwrites =
                reg.counter("act.debug_buffer_overwrites");
            m.quarantined_weights =
                reg.counter("act.quarantined_weight_sets");
            return m;
        }();
        return metrics;
    }
};

} // namespace

void
System::run(const Trace &trace)
{
    // The observe path (handle → memsys → onDependence) is the
    // per-event hot loop and contains no telemetry calls at all;
    // counters are published once per run as before/after deltas of
    // the stats the simulator already keeps.
    auto &reg = telemetry::MetricsRegistry::global();
    const bool publish = reg.enabled();
    SystemStats before;
    if (publish)
        before = stats();
    telemetry::ScopedSpan span("simulate", "sim");
    span.annotate(telemetry::arg(
        "events", static_cast<std::uint64_t>(trace.events().size())));

    for (const auto &event : trace.events())
        handle(event);

    if (publish) {
        const SystemStats after = stats();
        const SimMetrics &m = SimMetrics::get();
        m.events.add(trace.events().size());
        m.instructions.add(after.instructions - before.instructions);
        m.cycles.add(after.cycles >= before.cycles
                         ? after.cycles - before.cycles
                         : 0);
        m.loads.add(after.mem.loads - before.mem.loads);
        m.stores.add(after.mem.stores - before.mem.stores);
        m.dependences.add(after.act.dependences -
                          before.act.dependences);
        m.predictions.add(after.act.predictions -
                          before.act.predictions);
        m.predicted_invalid.add(after.act.predicted_invalid -
                                before.act.predicted_invalid);
        m.train_updates.add(after.act.train_updates -
                            before.act.train_updates);
        m.mode_switches.add(after.act.mode_switches -
                            before.act.mode_switches);
        m.input_overwrites.add(after.act.input_buffer_overwrites -
                               before.act.input_buffer_overwrites);
        m.debug_overwrites.add(after.act.debug_buffer_overwrites -
                               before.act.debug_buffer_overwrites);
        m.quarantined_weights.add(after.act.quarantined_weight_sets -
                                  before.act.quarantined_weight_sets);
    }
}

SystemStats
System::stats() const
{
    SystemStats out;
    out.mem = mem_.stats();
    out.context_switches = context_switches_;
    out.weight_transfer_instructions = weight_transfer_instructions_;
    for (const auto &core : cores_) {
        out.core_cycles.push_back(core.cycle());
        out.cycles = std::max(out.cycles, core.cycle());
        out.instructions += core.stats().instructions;
    }
    for (const auto &module : modules_) {
        const ActModuleStats &s = module->stats();
        out.act.dependences += s.dependences;
        out.act.predictions += s.predictions;
        out.act.predicted_invalid += s.predicted_invalid;
        out.act.train_updates += s.train_updates;
        out.act.mode_switches += s.mode_switches;
        out.act.stalled_offers += s.stalled_offers;
        out.act.stall_cycles += s.stall_cycles;
        out.act.training_dependences += s.training_dependences;
        out.act.input_buffer_overwrites += s.input_buffer_overwrites;
        out.act.debug_buffer_overwrites += s.debug_buffer_overwrites;
        out.act.input_drops_injected += s.input_drops_injected;
        out.act.debug_drops_injected += s.debug_drops_injected;
        out.act.quarantined_weight_sets += s.quarantined_weight_sets;
        out.act.quorum_overrides += s.quorum_overrides;
        out.act.ensemble_disagreements += s.ensemble_disagreements;
        out.act.repaired_weight_sets += s.repaired_weight_sets;
        out.act.quarantine_escalations += s.quarantine_escalations;
        out.act.dwell_suppressed_switches += s.dwell_suppressed_switches;
        out.act.topology_grows += s.topology_grows;
        out.act.topology_shrinks += s.topology_shrinks;
    }
    return out;
}

const ActModule *
System::module(CoreId core) const
{
    if (!config_.act_enabled || core >= modules_.size())
        return nullptr;
    return modules_[core].get();
}

std::vector<DebugEntry>
System::collectDebugEntries() const
{
    std::vector<DebugEntry> all;
    for (const auto &module : modules_) {
        const auto &entries = module->debugBuffer().entries();
        all.insert(all.end(), entries.begin(), entries.end());
    }
    // Order by each module's logging sequence; entries from different
    // cores interleave by their prediction index, which approximates
    // global time closely enough for postprocessing.
    std::stable_sort(all.begin(), all.end(),
                     [](const DebugEntry &a, const DebugEntry &b) {
                         return a.when < b.when;
                     });
    return all;
}

} // namespace act
