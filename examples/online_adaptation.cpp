/**
 * @file
 * Demonstrates ACT's headline property: adaptation without offline
 * retraining (Figure 1's online-training loop plus the thread-library
 * weight persistence of Section IV-C).
 *
 * A thread is deployed with NO stored weights — as after a fresh
 * install or a code change. Its ACT Module starts in online-training
 * mode, learns the program's communication on the fly, and the thread
 * library patches the learned weights back into the binary at thread
 * exit. A second execution then starts from those weights and behaves
 * like an offline-trained deployment.
 */

#include <cstdio>

#include "sim/system.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace act;
    registerAllWorkloads();
    const auto workload = makeWorkload("streamcluster");
    std::printf("workload: %s\n\n", workload->description().c_str());

    PairEncoder encoder;
    SystemConfig config;
    config.act.topology =
        Topology{config.act.sequence_length * encoder.width(), 10};

    // --- Execution 1: no weights in the binary --------------------
    WeightStore empty(config.act.topology);
    System first(config, encoder, empty);
    WorkloadParams params;
    params.seed = 11;
    first.run(workload->record(params));

    const SystemStats s1 = first.stats();
    std::printf("execution 1 (no stored weights):\n");
    std::printf("  dependences seen while training online: %llu of %llu\n",
                static_cast<unsigned long long>(
                    s1.act.training_dependences),
                static_cast<unsigned long long>(s1.act.dependences));
    std::printf("  back-propagation passes: %llu, mode switches: %llu\n",
                static_cast<unsigned long long>(s1.act.train_updates),
                static_cast<unsigned long long>(s1.act.mode_switches));

    // Thread exits patched the binary with the learned weights.
    const WeightStore &learned = first.weightStore();
    std::printf("  weights recorded for %zu threads at exit\n\n",
                learned.size());

    // --- Execution 2: starts from the learned weights -------------
    System second(config, encoder, learned);
    params.seed = 12; // a different input / interleaving
    second.run(workload->record(params));
    const SystemStats s2 = second.stats();
    std::printf("execution 2 (weights from execution 1):\n");
    std::printf("  dependences seen while training online: %llu of %llu\n",
                static_cast<unsigned long long>(
                    s2.act.training_dependences),
                static_cast<unsigned long long>(s2.act.dependences));
    std::printf("  flagged dependences: %llu (%.2f%%)\n\n",
                static_cast<unsigned long long>(s2.act.predicted_invalid),
                s2.act.predictions
                    ? 100.0 *
                          static_cast<double>(s2.act.predicted_invalid) /
                          static_cast<double>(s2.act.predictions)
                    : 0.0);

    const double fraction1 =
        s1.act.dependences
            ? static_cast<double>(s1.act.training_dependences) /
                  static_cast<double>(s1.act.dependences)
            : 0.0;
    const double fraction2 =
        s2.act.dependences
            ? static_cast<double>(s2.act.training_dependences) /
                  static_cast<double>(s2.act.dependences)
            : 0.0;
    std::printf("online-training share dropped from %.0f%% to %.0f%% — "
                "the deployment adapted itself.\n", fraction1 * 100.0,
                fraction2 * 100.0);
    return fraction2 < fraction1 ? 0 : 1;
}
