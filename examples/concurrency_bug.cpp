/**
 * @file
 * Walk-through of diagnosing a production concurrency failure: the
 * Apache-style atomicity violation on an object reference counter
 * (Table V row 2), shown step by step rather than through the
 * one-call driver.
 *
 * The scenario: two threads decrement a shared reference counter; a
 * lost update frees the object early, and a much later use of the
 * freed object crashes. The crash site is far from the root cause —
 * the situation where single-run diagnosis shines.
 */

#include <cstdio>

#include "diagnosis/pipeline.hh"

int
main()
{
    using namespace act;
    registerAllWorkloads();
    const auto workload = makeWorkload("apache");
    std::printf("workload: %s\n  %s\n\n", workload->name().c_str(),
                workload->description().c_str());

    // --- Step 1: offline training (Figure 4(a)) -------------------
    PairEncoder encoder;
    OfflineTrainingConfig training;
    training.traces = 10;
    const TrainedModel model = offlineTrain(*workload, encoder, training);
    std::printf("step 1 - offline training: topology %zux%zux1, "
                "%zu examples, error %.2f%%\n",
                model.topology.inputs, model.topology.hidden,
                model.example_count,
                model.training.final_error * 100.0);

    // --- Step 2: deployment -------------------------------------
    // The trained weights are stored in the binary per thread id; the
    // thread library initialises each AM with stwt at thread start.
    WeightStore store(model.topology);
    store.setAll(workload->threadCount(), model.weights);

    SystemConfig config;
    config.act.topology = model.topology;
    System system(config, encoder, store);

    // --- Step 3: the production failure --------------------------
    WorkloadParams params;
    params.seed = 4242;
    params.trigger_failure = true;
    const Trace failing = workload->record(params);
    system.run(failing);
    std::printf("step 2 - production run: crash after %zu events; "
                "ACT flagged %llu of %llu dependences\n",
                failing.size(),
                static_cast<unsigned long long>(
                    system.stats().act.predicted_invalid),
                static_cast<unsigned long long>(
                    system.stats().act.dependences));

    std::printf("\nDebug Buffer (newest last):\n");
    const auto entries = system.collectDebugEntries();
    for (const auto &entry : entries) {
        std::printf("  t%-2u out=%+.3f %s\n", entry.tid,
                    entry.output, entry.sequence.toString().c_str());
    }

    // --- Step 4: offline postprocessing (Section III-D) ----------
    // Twenty *correct* runs build the Correct Set; the failure is
    // never reproduced.
    CorrectSet correct;
    for (std::uint64_t seed = 500; seed < 520; ++seed) {
        WorkloadParams correct_params;
        correct_params.seed = seed;
        correct.addSequences(collectCacheSequences(
            workload->record(correct_params), config.mem, 3));
    }
    const DiagnosisReport report = postprocess(entries, correct);
    std::printf("\nstep 3 - postprocessing:\n%s\n",
                report.toString(8).c_str());

    const RawDependence root = workload->buggyDependence();
    const auto rank = report.rankOf(root);
    std::printf("ground truth: the freed-object read %s\n",
                root.toString().c_str());
    if (rank) {
        std::printf("ranked #%zu from ONE failing run.\n", *rank);
        return 0;
    }
    std::printf("root cause not ranked (unexpected).\n");
    return 1;
}
