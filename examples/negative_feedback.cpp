/**
 * @file
 * The Section III-C escape hatch: when the network lets a buggy
 * sequence through (predicts it valid) and the programmer pins the
 * sequence down by other means, it can be fed back as a negative
 * example — "similar to offline training".
 *
 * This example fabricates such a blind spot (a wrong-writer dependence
 * close enough to the valid band that the freshly trained network
 * accepts it), confirms the miss, applies the feedback refresher, and
 * shows the updated deployment now flags it while still accepting
 * normal behaviour.
 */

#include <cstdio>

#include "diagnosis/feedback.hh"

int
main()
{
    using namespace act;
    registerAllWorkloads();
    const auto workload = makeWorkload("fft");
    std::printf("workload: %s\n\n", workload->description().c_str());

    PairEncoder encoder;
    OfflineTrainingConfig training;
    training.traces = 6;
    const TrainedModel model = offlineTrain(*workload, encoder, training);
    MlpNetwork network(model.topology);
    network.setWeights(model.weights);
    std::printf("trained on %zu examples (error %.2f%%)\n",
                model.example_count,
                model.training.final_error * 100.0);

    // Fabricate a near-miss bug: a writer a few words off the real
    // producer — plausible enough that the network accepts it.
    const InputGenerator generator(3);
    WorkloadParams params;
    params.seed = 42;
    const Trace trace = workload->record(params);
    const GeneratedSequences sequences = generator.process(trace, false);

    DependenceSequence sneaky;
    for (const auto &seq : sequences.positives) {
        for (const Pc delta : {16u, 20u, 14u, 24u}) {
            DependenceSequence candidate = seq;
            candidate.deps.back().store_pc =
                candidate.deps.back().load_pc - delta;
            if (candidate.deps.back() == seq.deps.back())
                continue;
            if (network.predictValid(encoder.encodeSequence(candidate))) {
                sneaky = candidate;
                break;
            }
        }
        if (!sneaky.deps.empty())
            break;
    }
    if (sneaky.deps.empty()) {
        std::printf("the network has no blind spot to demonstrate "
                    "(it rejects every perturbation) - nothing to do.\n");
        return 0;
    }

    std::printf("\nblind spot found: %s\n",
                sneaky.deps.back().toString().c_str());
    std::printf("  network output before feedback: %.3f (accepted)\n",
                network.infer(encoder.encodeSequence(sneaky)));

    // The programmer confirms it is the bug; feed it back.
    WeightStore store(model.topology);
    store.setAll(workload->threadCount(), model.weights);
    const FeedbackResult result = applyNegativeFeedback(
        *workload, model, encoder, {sneaky}, store);

    MlpNetwork updated(model.topology);
    updated.setWeights(result.weights);
    std::printf("  network output after feedback:  %.3f (%s)\n",
                updated.infer(encoder.encodeSequence(sneaky)),
                result.fixed == 1 ? "rejected" : "STILL accepted");
    std::printf("  residual error on valid behaviour: %.2f%%\n",
                result.positive_error * 100.0);
    std::printf("  weight store patched for %zu threads\n\n",
                store.size());

    if (result.fixed == 1) {
        std::printf("the deployment will flag this communication from "
                    "now on.\n");
        return 0;
    }
    std::printf("feedback did not take (unexpected).\n");
    return 1;
}
