/**
 * @file
 * Quickstart: the whole ACT loop in ~60 lines.
 *
 * 1. Pick a buggy program model (gzip's Figure 2(d) semantic bug).
 * 2. Train the neural network offline on a few correct executions.
 * 3. Run the failing execution on the simulated machine with per-core
 *    ACT Modules attached.
 * 4. Postprocess the Debug Buffer against fresh correct runs and print
 *    the ranked root-cause candidates.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "diagnosis/pipeline.hh"

int
main()
{
    using namespace act;
    registerAllWorkloads();

    // The workload registry holds models of every program from the
    // paper's evaluation; "gzip" is the '-'-in-the-middle semantic bug.
    const auto workload = makeWorkload("gzip");
    std::printf("workload: %s\n  %s\n\n", workload->name().c_str(),
                workload->description().c_str());

    // One call drives the full Figure 1 loop: offline training,
    // the failing production run, and offline postprocessing.
    DiagnosisSetup setup = defaultDiagnosisSetup();
    setup.training.traces = 10;    // correct executions for training
    setup.postmortem_traces = 20;  // correct executions for pruning
    const DiagnosisResult result = diagnoseFailure(*workload, setup);

    std::printf("offline training: %zu examples from %zu RAW "
                "dependences, residual error %.2f%%\n",
                result.model.example_count,
                result.model.dependence_count,
                result.model.training.final_error * 100.0);
    std::printf("production run: %llu dependences checked, %llu flagged "
                "into the Debug Buffer\n\n",
                static_cast<unsigned long long>(
                    result.run_stats.act.dependences),
                static_cast<unsigned long long>(
                    result.run_stats.act.predicted_invalid));

    std::printf("%s\n", result.report.toString().c_str());

    const RawDependence root = workload->buggyDependence();
    std::printf("ground truth root cause: %s\n", root.toString().c_str());
    if (result.rank) {
        std::printf("ACT ranked it #%zu without ever reproducing the "
                    "failure.\n", *result.rank);
    } else {
        std::printf("ACT did not rank the root cause (unexpected).\n");
        return 1;
    }
    return 0;
}
