/**
 * @file
 * Production-run cost accounting: runs one workload on the simulated
 * machine with and without ACT and breaks the added cycles down into
 * their sources (FIFO retire stalls, weight transfers, per-mode
 * behaviour) — the quantities behind the paper's 8.2% overhead claim.
 */

#include <cstdio>

#include "diagnosis/pipeline.hh"

int
main(int argc, char **argv)
{
    using namespace act;
    registerAllWorkloads();
    const std::string name = argc > 1 ? argv[1] : "lu";
    const auto workload = makeWorkload(name);
    std::printf("workload: %s\n  %s\n\n", workload->name().c_str(),
                workload->description().c_str());

    PairEncoder encoder;
    OfflineTrainingConfig training;
    training.traces = 6;
    training.trainer.max_epochs = 300;
    const TrainedModel model = offlineTrain(*workload, encoder, training);

    WorkloadParams params;
    params.seed = 777;
    const Trace trace = workload->record(params);

    SystemConfig config;
    config.act_enabled = false;
    System baseline(config);
    baseline.run(trace);

    config.act_enabled = true;
    config.act.topology = model.topology;
    WeightStore store(model.topology);
    store.setAll(workload->threadCount(), model.weights);
    System with_act(config, encoder, store);
    with_act.run(trace);

    const SystemStats base = baseline.stats();
    const SystemStats act_stats = with_act.stats();

    std::printf("trace: %zu events, %llu instructions, %u threads\n\n",
                trace.size(),
                static_cast<unsigned long long>(trace.instructionCount()),
                workload->threadCount());

    std::printf("%-34s %14llu cycles\n", "baseline machine",
                static_cast<unsigned long long>(base.cycles));
    std::printf("%-34s %14llu cycles\n", "with ACT Modules",
                static_cast<unsigned long long>(act_stats.cycles));
    const double overhead =
        base.cycles ? 100.0 *
                          static_cast<double>(act_stats.cycles -
                                              base.cycles) /
                          static_cast<double>(base.cycles)
                    : 0.0;
    std::printf("%-34s %14.2f %%\n\n", "execution overhead", overhead);

    std::printf("cost breakdown:\n");
    std::printf("  %-32s %12llu\n", "dependences processed",
                static_cast<unsigned long long>(
                    act_stats.act.dependences));
    std::printf("  %-32s %12llu\n", "FIFO retire-stall cycles",
                static_cast<unsigned long long>(
                    act_stats.act.stall_cycles));
    std::printf("  %-32s %12llu\n", "stalled FIFO offers",
                static_cast<unsigned long long>(
                    act_stats.act.stalled_offers));
    std::printf("  %-32s %12llu\n", "weight-transfer instructions",
                static_cast<unsigned long long>(
                    act_stats.weight_transfer_instructions));
    std::printf("  %-32s %12llu\n", "context switches",
                static_cast<unsigned long long>(
                    act_stats.context_switches));
    std::printf("  %-32s %12llu\n", "online mode switches",
                static_cast<unsigned long long>(
                    act_stats.act.mode_switches));
    std::printf("  %-32s %12llu\n", "dependences during training mode",
                static_cast<unsigned long long>(
                    act_stats.act.training_dependences));

    std::printf("\nmemory system: %llu loads, %.1f%% with last-writer "
                "metadata available\n",
                static_cast<unsigned long long>(act_stats.mem.loads),
                act_stats.mem.writer_known + act_stats.mem.writer_unknown
                    ? 100.0 *
                          static_cast<double>(act_stats.mem.writer_known) /
                          static_cast<double>(act_stats.mem.writer_known +
                                              act_stats.mem.writer_unknown)
                    : 0.0);
    return 0;
}
